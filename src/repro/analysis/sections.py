"""Paper section index for the RP008 cross-reference rule.

Docstrings across :mod:`repro` cite the source paper with ``§N`` / ``§N.M``
markers (e.g. "the coarsening phase (§3.1)").  Those citations rot silently
when they point at sections that do not exist, so the lint pass validates
every marker against the section outline recorded in ``PAPER.md`` at the
repository root.

The outline is discovered by scanning ``PAPER.md`` for every ``§N[.M]``
token it mentions; referencing ``§N.M`` also implicitly validates ``§N``.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["find_paper_md", "load_sections", "section_tokens"]

_SECTION_RE = re.compile(r"§(\d+(?:\.\d+)*)")

#: File the section outline is read from.
PAPER_FILENAME = "PAPER.md"


def section_tokens(text: str) -> set[str]:
    """All section numbers cited as ``§N[.M]`` in ``text`` (without ``§``)."""
    return set(_SECTION_RE.findall(text))


def find_paper_md(start) -> Path | None:
    """Locate ``PAPER.md`` by walking upward from ``start``.

    ``start`` may be a file or directory; the first ``PAPER.md`` found in
    it or any ancestor directory wins.  Returns ``None`` when the tree has
    no paper manifest (the RP008 rule then skips itself).
    """
    start = Path(start).resolve()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / PAPER_FILENAME
        if candidate.is_file():
            return candidate
    return None


def load_sections(paper_path) -> set[str]:
    """Valid section numbers declared by the paper manifest.

    A subsection token validates its ancestors too: a manifest citing only
    ``§3.1`` still makes ``§3`` a valid reference.
    """
    text = Path(paper_path).read_text(encoding="utf-8")
    tokens = section_tokens(text)
    closed = set(tokens)
    for token in tokens:
        parts = token.split(".")
        for i in range(1, len(parts)):
            closed.add(".".join(parts[:i]))
    return closed
