"""Per-level statistics of a multilevel run, for the parallel model.

The parallel performance of the multilevel algorithm is governed by what
each level looks like: how many vertices/edges the coarsening touches, how
many colouring rounds a parallel matching needs, and how large the
partition boundary is when refinement runs there.  This module executes a
real multilevel bisection and records those quantities level by level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coarsen import coarsen
from repro.core.multilevel import bisect
from repro.core.options import DEFAULT_OPTIONS
from repro.graph.partition import boundary_mask, exact_weight_bincount
from repro.parallel.coloring import handshake_matching_rounds
from repro.utils.rng import as_generator, spawn_child


@dataclass(frozen=True)
class LevelStats:
    """One level of the hierarchy, as the parallel model sees it.

    Attributes
    ----------
    nvtxs, nedges:
        Graph size at this level.
    boundary:
        Boundary vertices of the (final, projected) partition at this
        level — the working set of parallel boundary refinement.
    rounds:
        Handshake rounds a parallel matching needs at this level
        (measured by simulation) — the number of synchronisation rounds
        the parallel formulation pays per level.
    """

    nvtxs: int
    nedges: int
    boundary: int
    rounds: int


def collect_level_stats(graph, options=DEFAULT_OPTIONS, rng=None):
    """Run a multilevel bisection and return ``(levels, result)``.

    ``levels[0]`` is the finest level.  The boundary at each level is that
    of the final bisection projected back down the hierarchy (a faithful
    stand-in for the per-level refinement working set: refinement keeps
    the boundary near its final location).

    ``rng`` seeds everything, including the per-level handshake-matching
    simulations (each level gets its own child stream so the measured
    rounds respond to the caller's seed but not to the number of levels
    simulated before it).
    """
    rng = as_generator(rng if rng is not None else options.seed)
    hierarchy = coarsen(graph, options, rng)
    result = bisect(graph, options, rng, hierarchy=hierarchy)

    # Project the final fine partition up the hierarchy by majority vote
    # (each multinode takes its heavier side), levelling the boundary.
    levels = []
    where = np.asarray(result.bisection.where)
    for i, g in enumerate(hierarchy.graphs):
        boundary = int(boundary_mask(g, where).sum())
        # Capped at 4 rounds, as practical parallel coarseners run it:
        # later rounds match a vanishing fraction and are not worth a
        # synchronisation; unmatched vertices carry over.
        rounds, _ = handshake_matching_rounds(
            g, spawn_child(rng), max_rounds=4
        )
        levels.append(
            LevelStats(
                nvtxs=g.nvtxs,
                nedges=g.nedges,
                boundary=boundary,
                rounds=rounds,
            )
        )
        if i < len(hierarchy.cmaps):
            cmap = hierarchy.cmaps[i]
            nc = hierarchy.graphs[i + 1].nvtxs
            tw = g.total_vwgt()
            votes1 = exact_weight_bincount(
                cmap, where * g.vwgt, minlength=nc, total=tw
            )
            total = exact_weight_bincount(cmap, g.vwgt, minlength=nc, total=tw)
            where = (votes1 * 2 > total).astype(np.int8)
    return levels, result
