"""An α–β performance model of the parallel multilevel algorithm.

Prices each phase of the parallel formulation ([23]'s structure) from the
per-level statistics of a real run:

**Coarsening, per level** — each processor matches its ``n/p`` share of
vertices and builds its share of the coarse graph (O(edges/p) work); the
matching needs one boundary exchange per colouring round plus a constant
number of all-to-some exchanges to build the contraction:

``t_level = (2·m/p)·t_flop + rounds·(α + (cut_edges/p)·β) + α·log p``

**Initial partition** — the coarsest graph is tiny and solved serially:
``t_init = O(coarsest work)·t_flop`` (a serial term, Amdahl's floor).

**Uncoarsening, per level** — boundary refinement touches only boundary
vertices, split across processors, with one gain exchange per colouring
round and an all-reduce to agree on the best prefix:

``t_level = (boundary·deg/p)·t_flop + rounds·(α + (boundary/p)·β) + α·log p``

This is deliberately a *model*, not a simulator: the paper's own speedup
report (56× on 128 T3D processors for moderate problems) is a wall-clock
claim we cannot re-measure, but the model reproduces its shape — near-
linear speedup until the per-level α·rounds terms and the serial coarsest
phase dominate, reaching tens (≈ 30–50×, same order as the paper's 56×)
at p = 128 for paper-scale problems and saturating beyond, with the knee
moving right as the graph grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class MachineParameters:
    """α–β machine constants, in units of one flop.

    Defaults loosely follow a mid-90s MPP with fast one-sided messaging
    (T3D-class: ~2 µs latency against a ~150 Mflop/s node): startup
    α ≈ 1000 flops, per-word cost β ≈ 10 flops.  Slower networks (larger
    α) pull every saturation point to lower processor counts.
    """

    t_flop: float = 1.0
    alpha: float = 1000.0  #: message startup
    beta: float = 10.0  #: per word


@dataclass(frozen=True)
class ParallelEstimate:
    """Modelled execution of the multilevel algorithm on ``p`` processors."""

    processors: int
    serial_time: float
    parallel_time: float
    coarsening_time: float
    initial_time: float
    uncoarsening_time: float

    @property
    def speedup(self) -> float:
        return self.serial_time / self.parallel_time

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors


#: Work constants per unit (flop-equivalents per edge/vertex touched);
#: only their ratios matter for speedup shapes.
_COARSEN_WORK_PER_EDGE = 8.0
_REFINE_WORK_PER_BOUNDARY_EDGE = 12.0
_INIT_WORK_PER_EDGE = 40.0  # several GGGP trials over the coarsest graph


def estimate_parallel_speedup(
    levels,
    processors: int,
    machine: MachineParameters = MachineParameters(),
) -> ParallelEstimate:
    """Model the parallel multilevel bisection over ``levels``.

    Parameters
    ----------
    levels:
        Sequence of :class:`~repro.parallel.stats.LevelStats`, finest
        first (as returned by :func:`collect_level_stats`).
    processors:
        Number of processors ``p ≥ 1``.

    Returns
    -------
    ParallelEstimate
    """
    if processors < 1:
        raise ConfigurationError("processors must be >= 1")
    p = processors
    log_p = max(1.0, np.log2(p))
    alpha, beta, t_flop = machine.alpha, machine.beta, machine.t_flop

    serial = 0.0
    coarsen_t = 0.0
    uncoarsen_t = 0.0

    finest_levels = levels[:-1] if len(levels) > 1 else levels
    for lv in finest_levels:
        avg_deg = 2.0 * lv.nedges / lv.nvtxs if lv.nvtxs else 0.0
        # --- coarsening ------------------------------------------------
        work = _COARSEN_WORK_PER_EDGE * 2.0 * lv.nedges * t_flop
        serial += work
        comm = lv.rounds * (alpha + (lv.boundary * avg_deg / p) * beta)
        coarsen_t += work / p + comm + alpha * log_p
        # --- refinement at this level -----------------------------------
        rwork = (
            _REFINE_WORK_PER_BOUNDARY_EDGE * lv.boundary * avg_deg * t_flop
        )
        serial += rwork
        rcomm = lv.rounds * (alpha + (lv.boundary / p) * beta)
        uncoarsen_t += rwork / p + rcomm + alpha * log_p

    coarsest = levels[-1]
    init = _INIT_WORK_PER_EDGE * max(1, coarsest.nedges) * t_flop
    serial += init
    initial_t = init  # serial phase (Amdahl floor), plus a broadcast
    initial_t += alpha * log_p

    parallel = coarsen_t + initial_t + uncoarsen_t
    if p == 1:
        parallel = serial  # no communication terms on one processor
        coarsen_t = serial - init
        initial_t = init
        uncoarsen_t = 0.0
    return ParallelEstimate(
        processors=p,
        serial_time=serial,
        parallel_time=parallel,
        coarsening_time=coarsen_t,
        initial_time=initial_t,
        uncoarsening_time=uncoarsen_t,
    )


def speedup_curve(levels, processor_counts, machine=MachineParameters()):
    """Speedups for each ``p`` in ``processor_counts`` (convenience)."""
    return [
        estimate_parallel_speedup(levels, p, machine).speedup
        for p in processor_counts
    ]


def scale_levels(levels, factor: float, *, dimensionality: int = 3):
    """Rescale level statistics to a ``factor``× larger problem.

    The multilevel hierarchy is self-similar, so a level of the scaled
    problem has ``factor``× the vertices and edges; the partition boundary
    is a separator surface, scaling as ``factor^((d-1)/d)`` for a ``d``-
    dimensional mesh; handshake round counts grow like log of the size.
    Used to evaluate the model at the paper's problem sizes from level
    statistics measured on the scaled-down suite graphs.
    """
    from repro.parallel.stats import LevelStats

    if factor <= 0:
        raise ConfigurationError("factor must be positive")
    surface = factor ** ((dimensionality - 1) / dimensionality)
    extra_rounds = max(0, int(round(np.log2(max(factor, 1e-12)))))
    return [
        LevelStats(
            nvtxs=max(1, int(lv.nvtxs * factor)),
            nedges=max(1, int(lv.nedges * factor)),
            boundary=max(1, int(lv.boundary * surface)),
            rounds=lv.rounds + min(extra_rounds, 2),
        )
        for lv in levels
    ]
