"""Parallel-formulation substrate (§5 of the paper's narrative).

The paper's closing argument is about parallelisation: coarsening is easy
to parallelise, classical KL is not, and the boundary refinement schemes
"reduce this bottleneck substantially — in fact our parallel
implementation [23] of this multilevel partitioning is able to get a
speedup of as much as 56 on a 128-processor Cray T3D for moderate size
problems."

We do not have a T3D; per the substitution rule we build the closest
synthetic equivalent that exercises the same structure:

* :mod:`repro.parallel.coloring` — distributed-style graph colourings
  (Luby/Jones–Plassmann), the device that turns matching and boundary
  refinement into independent parallel rounds;
* :mod:`repro.parallel.stats` — per-level instrumentation of a multilevel
  run (sizes, boundary sizes, refinement moves);
* :mod:`repro.parallel.model` — an α–β machine model that prices each
  phase of the parallel formulation from those statistics and produces
  speedup curves;
* :func:`estimate_parallel_speedup` — the headline: simulated speedup of
  the parallel multilevel algorithm on ``p`` processors.
"""

from repro.parallel.coloring import (
    greedy_coloring,
    handshake_matching_rounds,
    is_proper_coloring,
    luby_coloring,
)
from repro.parallel.model import (
    MachineParameters,
    ParallelEstimate,
    estimate_parallel_speedup,
)
from repro.parallel.stats import LevelStats, collect_level_stats

__all__ = [
    "luby_coloring",
    "handshake_matching_rounds",
    "greedy_coloring",
    "is_proper_coloring",
    "collect_level_stats",
    "LevelStats",
    "MachineParameters",
    "ParallelEstimate",
    "estimate_parallel_speedup",
]
