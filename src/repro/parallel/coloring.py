"""Distance-1 graph colourings, the parallelisation device of [23].

A parallel matching (or a parallel refinement sweep) must never let two
adjacent vertices act simultaneously.  The standard fix — used by the
paper's parallel formulation and by every distributed partitioner since —
is to colour the graph and process one colour class per round: vertices
of equal colour form an independent set, so all of them may match/move at
once.  The number of colours bounds the number of communication rounds.

Two algorithms:

* :func:`luby_coloring` — the Luby/Jones–Plassmann randomized scheme each
  processor could run locally: every still-uncoloured vertex draws a
  random priority, local maxima among uncoloured neighbours take the
  current colour, repeat.  Rounds are fully vectorised here, mirroring
  the "everyone acts at once" structure of the distributed algorithm.
* :func:`greedy_coloring` — sequential first-fit baseline (fewer colours,
  inherently serial) for comparison in tests and the model.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator


def luby_coloring(graph, rng=None) -> np.ndarray:
    """Jones–Plassmann/Luby colouring; returns int colours per vertex.

    Each round, every uncoloured vertex that holds the maximum priority
    among its uncoloured neighbours receives the round's colour.  Expected
    O(log n) rounds; every round is a constant number of vectorised
    passes over the edge arrays.
    """
    rng = as_generator(rng)
    n = graph.nvtxs
    color = np.full(n, -1, dtype=np.int32)
    if n == 0:
        return color
    priority = rng.random(n)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    dst = graph.adjncy

    current = 0
    while True:
        uncolored = color == -1
        if not uncolored.any():
            break
        # Highest uncoloured-neighbour priority per vertex.
        live = uncolored[src] & uncolored[dst]
        best_nbr = np.zeros(n)
        if live.any():
            np.maximum.at(best_nbr, src[live], priority[dst[live]])
        winners = uncolored & (priority > best_nbr)
        # Isolated-in-the-uncoloured-subgraph vertices always win.
        if not winners.any():  # pragma: no cover - ties on float priorities
            winners = uncolored & (priority >= best_nbr)
        color[winners] = current
        current += 1
    return color


def greedy_coloring(graph, order=None) -> np.ndarray:
    """First-fit colouring in the given (default: natural) vertex order."""
    n = graph.nvtxs
    color = np.full(n, -1, dtype=np.int32)
    if order is None:
        order = range(n)
    for v in order:
        nbr_colors = set(int(c) for c in color[graph.neighbors(v)] if c >= 0)
        c = 0
        while c in nbr_colors:
            c += 1
        color[v] = c
    return color


def handshake_matching_rounds(graph, rng=None, max_rounds=None):
    """Simulate the parallel handshake matching of [23]; return rounds.

    Per round, every unmatched vertex "extends a hand" to its
    highest-priority unmatched neighbour (fresh random priorities each
    round); mutual proposals match.  The matched fraction grows
    geometrically, so real implementations cap the rounds (``max_rounds``,
    as parallel METIS does — leftover vertices are simply copied to the
    coarse graph) rather than paying the long tail to maximality.

    Returns
    -------
    (rounds, match):
        Number of rounds executed and the resulting matching in
        involution form (maximal only when ``max_rounds`` is ``None``).
    """
    rng = as_generator(rng)
    n = graph.nvtxs
    match = np.arange(n, dtype=np.int64)
    unmatched = np.ones(n, dtype=bool)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    dst = graph.adjncy.astype(np.int64)

    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        live = unmatched[src] & unmatched[dst]
        if not live.any():
            break
        rounds += 1
        priority = rng.random(n)
        ls, ld = src[live], dst[live]
        # Each vertex proposes to its max-priority unmatched neighbour.
        best = np.full(n, -1.0)
        np.maximum.at(best, ls, priority[ld])
        is_best = priority[ld] == best[ls]
        proposal = np.full(n, -1, dtype=np.int64)
        proposal[ls[is_best]] = ld[is_best]  # last writer wins among ties
        # Mutual proposals shake hands.
        proposers = np.flatnonzero(proposal >= 0)
        mutual = proposers[proposal[proposal[proposers]] == proposers]
        a = mutual
        b = proposal[mutual]
        keep = a < b
        a, b = a[keep], b[keep]
        match[a] = b
        match[b] = a
        unmatched[a] = False
        unmatched[b] = False
    return rounds, match


def is_proper_coloring(graph, color) -> bool:
    """No edge joins two vertices of equal colour, and all are coloured."""
    color = np.asarray(color)
    if len(color) != graph.nvtxs or (len(color) and color.min() < 0):
        return False
    src = np.repeat(np.arange(graph.nvtxs, dtype=np.int64), np.diff(graph.xadj))
    return not bool((color[src] == color[graph.adjncy]).any())


def num_colors(color) -> int:
    """Number of distinct colours used."""
    color = np.asarray(color)
    return int(color.max()) + 1 if len(color) else 0
