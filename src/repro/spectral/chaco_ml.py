"""The Chaco-ML baseline: Hendrickson & Leland's multilevel scheme.

Per §4.2 of the paper, Chaco's multilevel algorithm "uses random matching
during coarsening, spectral bisection for partitioning the coarse graph,
and Kernighan-Lin refinement every other coarsening level during the
uncoarsening phase".  This module implements exactly that combination on
top of the shared phase kernels, so the comparison in Figure 3 isolates the
*policy* differences (HEM vs RM, GGGP vs spectral, BKLGR vs periodic KLR)
rather than implementation differences.
"""

from __future__ import annotations

import numpy as np

from repro.core.coarsen import coarsen
from repro.core.initial import sbp_bisection
from repro.core.kway import partition as _kway_partition
from repro.core.multilevel import MultilevelResult, project_where
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme, RefinePolicy
from repro.core.refine import PassStats, refine_bisection
from repro.graph.partition import Bisection, part_weights
from repro.utils.errors import PartitionError
from repro.utils.rng import as_generator
from repro.utils.timing import PhaseTimer


def chaco_ml_bisect(
    graph, options=DEFAULT_OPTIONS, rng=None, target0=None
) -> MultilevelResult:
    """Multilevel bisection with RM + SBP + KLR-every-other-level."""
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    rng = as_generator(rng if rng is not None else options.seed)
    timers = PhaseTimer()
    stats = PassStats()
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    target1 = total - target0
    maxpwgt = (
        int(np.ceil(options.ubfactor * target0)),
        int(np.ceil(options.ubfactor * target1)),
    )

    chaco_options = options.with_(matching=MatchingScheme.RM)
    with timers.phase("CTime"):
        hierarchy = coarsen(graph, chaco_options, rng)
    with timers.phase("ITime"):
        bisection = sbp_bisection(hierarchy.coarsest, target0, rng)
    initial_cut = bisection.cut

    # Refinement every other level, and always at the finest level so the
    # final answer is locally optimal (Chaco's behaviour).
    levels_up = 0
    for level in range(hierarchy.nlevels - 2, -1, -1):
        fine = hierarchy.graphs[level]
        with timers.phase("PTime"):
            where = project_where(bisection.where, hierarchy.cmaps[level])
            bisection = Bisection(
                where=where,
                cut=bisection.cut,
                pwgts=part_weights(fine, where, 2),
            )
        levels_up += 1
        if levels_up % 2 == 0 or level == 0:
            with timers.phase("RTime"):
                refine_bisection(
                    fine,
                    bisection,
                    RefinePolicy.KLR,
                    options,
                    maxpwgt=maxpwgt,
                    original_nvtxs=graph.nvtxs,
                    stats=stats,
                )
    return MultilevelResult(
        bisection=bisection,
        timers=timers,
        nlevels=hierarchy.nlevels,
        coarsest_nvtxs=hierarchy.coarsest.nvtxs,
        initial_cut=initial_cut,
        stats=stats,
    )


def chaco_ml_partition(graph, nparts, options=DEFAULT_OPTIONS, rng=None):
    """k-way partition by recursive Chaco-ML bisection."""
    return _kway_partition(graph, nparts, options, rng, bisector=chaco_ml_bisect)
