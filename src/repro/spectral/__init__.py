"""Spectral methods: the substrate (Laplacian, Lanczos, Fiedler vectors)
and the paper's spectral baselines (flat SB, MSB, MSB-KL, Chaco-ML).
"""

from repro.spectral.bisection import spectral_bisection
from repro.spectral.chaco_ml import chaco_ml_bisect, chaco_ml_partition
from repro.spectral.fiedler import algebraic_connectivity, fiedler_vector
from repro.spectral.laplacian import (
    LaplacianOperator,
    dense_laplacian,
    weighted_degrees,
)
from repro.spectral.lanczos import lanczos_smallest
from repro.spectral.msb import msb_bisect, msb_partition

__all__ = [
    "fiedler_vector",
    "algebraic_connectivity",
    "spectral_bisection",
    "dense_laplacian",
    "weighted_degrees",
    "LaplacianOperator",
    "lanczos_smallest",
    "msb_bisect",
    "msb_partition",
    "chaco_ml_bisect",
    "chaco_ml_partition",
]
