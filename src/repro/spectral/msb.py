"""Multilevel spectral bisection (MSB) — the paper's main baseline.

Barnard & Simon's algorithm ([2] in the paper): coarsen the graph with
random matchings, compute the Fiedler vector of the coarsest graph exactly,
then walk back up the hierarchy — at each level the coarse Fiedler vector
is *interpolated* onto the finer graph (each fine vertex inherits its
multinode's value) and *polished* by an iterative eigensolver warm-started
from the interpolant.  The original used SYMMLQ for the polish; any
convergent Krylov polish preserves the structure, and we reuse our deflated
Lanczos (:mod:`repro.spectral.lanczos`) with a small Krylov space, which
plays the same role: few iterations because the start vector is already
close.

``msb_bisect`` mirrors :func:`repro.core.multilevel.bisect`'s result shape
so it can be plugged into recursive bisection (Figures 1, 2 and 4 compare
k-way MSB against the k-way multilevel scheme).  The MSB-KL variant
additionally runs full Kernighan–Lin refinement on the final flat
bisection, as in Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.coarsen import coarsen
from repro.core.initial import split_at_weighted_median
from repro.core.kway import partition as _kway_partition
from repro.core.multilevel import MultilevelResult
from repro.core.options import DEFAULT_OPTIONS, MatchingScheme, RefinePolicy
from repro.core.refine import PassStats, refine_bisection
from repro.obs.tracer import resolve_tracer
from repro.spectral.fiedler import DENSE_THRESHOLD, fiedler_vector
from repro.utils.errors import PartitionError, SpectralConvergenceError
from repro.utils.rng import as_generator
from repro.utils.timing import PhaseTimer


def msb_fiedler(
    graph, options=DEFAULT_OPTIONS, rng=None, timers=None, *, tracer=None
) -> np.ndarray:
    """Fiedler vector of ``graph`` via the multilevel (MSB) scheme."""
    rng = as_generator(rng if rng is not None else options.seed)
    if timers is None:
        timers = PhaseTimer()
    trc, owned_trace = resolve_tracer(
        tracer, options, run="msb-fiedler", nvtxs=graph.nvtxs
    )
    try:
        msb_options = options.with_(matching=MatchingScheme.RM)
        with timers.phase("CTime"), trc.span("coarsen", phase="CTime") as sp:
            hierarchy = coarsen(graph, msb_options, rng, span=sp)
        with timers.phase("ITime"), trc.span("fiedler", phase="ITime"):
            vec = fiedler_vector(hierarchy.coarsest, rng)
        for level in range(hierarchy.nlevels - 2, -1, -1):
            fine = hierarchy.graphs[level]
            with timers.phase("PTime"), trc.span(
                "interpolate", phase="PTime", level=level
            ):
                vec = vec[hierarchy.cmaps[level]]  # interpolate
            with timers.phase("RTime"), trc.span(
                "polish", phase="RTime", level=level
            ) as sp:
                if fine.nvtxs <= DENSE_THRESHOLD:
                    vec = fiedler_vector(fine, rng)
                else:
                    try:
                        vec = fiedler_vector(
                            fine,
                            rng,
                            start=vec,
                            force_lanczos=True,
                            krylov_dim=25,
                            restarts=4,
                            tol=1e-6,
                        )
                    except SpectralConvergenceError:
                        # A failed polish keeps the interpolated coarse
                        # vector — that is MSB's whole premise (the
                        # interpolant is already close); the next finer
                        # level polishes from it again.
                        if sp:
                            sp.set(polish="kept-interpolant")
        return vec
    finally:
        if owned_trace:
            trc.close()


def msb_bisect(
    graph,
    options=DEFAULT_OPTIONS,
    rng=None,
    target0=None,
    *,
    kl_refine=False,
) -> MultilevelResult:
    """Bisect via MSB; with ``kl_refine`` this is the MSB-KL baseline."""
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    rng = as_generator(rng if rng is not None else options.seed)
    timers = PhaseTimer()
    stats = PassStats()
    total = graph.total_vwgt()
    if target0 is None:
        target0 = total // 2
    trc, owned_trace = resolve_tracer(
        None, options, run="msb", nvtxs=graph.nvtxs
    )
    try:
        vec = msb_fiedler(graph, options, rng, timers, tracer=trc)
        with timers.phase("ITime"), trc.span("split", phase="ITime"):
            bisection = split_at_weighted_median(graph, vec, target0)
        initial_cut = bisection.cut
        if kl_refine:
            target1 = total - target0
            maxpwgt = (
                int(np.ceil(options.ubfactor * target0)),
                int(np.ceil(options.ubfactor * target1)),
            )
            with timers.phase("RTime"), trc.span(
                "refine", phase="RTime"
            ) as sp:
                refine_bisection(
                    graph,
                    bisection,
                    RefinePolicy.KLR,
                    options,
                    maxpwgt=maxpwgt,
                    stats=stats,
                    span=sp,
                )
        return MultilevelResult(
            bisection=bisection,
            timers=timers,
            nlevels=1,
            coarsest_nvtxs=graph.nvtxs,
            initial_cut=initial_cut,
            stats=stats,
        )
    finally:
        if owned_trace:
            trc.close()


def msb_partition(graph, nparts, options=DEFAULT_OPTIONS, rng=None, *, kl_refine=False):
    """k-way partition by recursive MSB (optionally MSB-KL) bisection."""

    def bisector(g, opts, child_rng, target0):
        return msb_bisect(g, opts, child_rng, target0, kl_refine=kl_refine)

    return _kway_partition(graph, nparts, options, rng, bisector=bisector)
