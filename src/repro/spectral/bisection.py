"""Flat spectral bisection: Fiedler vector + weighted-median split.

This is the classical Pothen–Simon–Liou recipe ([33] in the paper): sort
vertices by their Fiedler coordinate and cut at the point where part 0
first reaches its target weight.  It serves as the coarse partitioner for
Chaco-ML and as a standalone (slow) baseline.
"""

from __future__ import annotations

from repro.core.initial import split_at_weighted_median
from repro.graph.partition import Bisection
from repro.spectral.fiedler import fiedler_vector
from repro.utils.errors import PartitionError
from repro.utils.rng import as_generator


def spectral_bisection(graph, target0=None, rng=None, **fiedler_kwargs) -> Bisection:
    """Bisect ``graph`` by the weighted median of its Fiedler vector.

    Parameters
    ----------
    target0:
        Target vertex weight of part 0 (defaults to half the total).
    fiedler_kwargs:
        Forwarded to :func:`repro.spectral.fiedler.fiedler_vector` —
        ``tol``, ``krylov_dim``, ``start``, …

    Returns
    -------
    repro.graph.partition.Bisection
    """
    if graph.nvtxs < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    rng = as_generator(rng)
    if target0 is None:
        target0 = graph.total_vwgt() // 2
    vec = fiedler_vector(graph, rng, **fiedler_kwargs)
    return split_at_weighted_median(graph, vec, target0)
