"""Fiedler vector computation.

The Fiedler vector — the eigenvector of the second-smallest Laplacian
eigenvalue — is the workhorse of every spectral method in the paper (SBP,
MSB, MSB-KL, SND, Chaco-ML's coarse partitioner).  The driver here picks
the cheapest adequate method:

* dense symmetric eigensolve for graphs up to ``DENSE_THRESHOLD`` vertices
  (exact; O(n³) but n ≤ 200 makes that microseconds);
* deflated Lanczos with full reorthogonalisation otherwise, optionally
  warm-started — MSB's level-by-level Fiedler interpolation enters here.

For a *disconnected* graph λ₂ = 0 and the "Fiedler" vector is a component
indicator; that is still a perfectly good bisection vector (it separates
components at zero cut), so no special casing is needed downstream.
"""

from __future__ import annotations

import numpy as np

from repro.spectral.laplacian import LaplacianOperator, dense_laplacian
from repro.spectral.lanczos import lanczos_smallest
from repro.utils.errors import SpectralConvergenceError
from repro.utils.rng import as_generator

#: Below this many vertices the dense eigensolver is used unconditionally.
DENSE_THRESHOLD = 200


def fiedler_vector(
    graph,
    rng=None,
    *,
    start=None,
    tol=1e-7,
    krylov_dim=60,
    restarts=12,
    force_lanczos=False,
    faults=None,
) -> np.ndarray:
    """Compute (an approximation of) the Fiedler vector of ``graph``.

    Parameters
    ----------
    start:
        Warm-start vector for the Lanczos path (ignored on the dense path).
        MSB passes the interpolated coarse Fiedler vector here, which is
        what makes the multilevel spectral method fast: a good start needs
        only a few polish iterations.
    force_lanczos:
        Use the Lanczos path even for small graphs (tests use this to
        compare the two paths on the same input).
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector` threaded
        down from the pipeline; its ``lanczos`` site simulates solver
        failure here (the coarsest graphs take the dense path, so the
        injection point must sit above the path split).

    Returns
    -------
    numpy.ndarray
        Unit-norm float64 vector orthogonal to the constant vector.

    Raises
    ------
    repro.utils.errors.SpectralConvergenceError
        When the eigensolver does not converge or produces a non-finite
        vector (or when an injected ``lanczos`` fault fires).
    """
    rng = as_generator(rng)
    n = graph.nvtxs
    if n == 0:
        return np.zeros(0)
    if n == 1:
        return np.zeros(1)
    if faults and faults.trip("lanczos"):
        raise SpectralConvergenceError(
            "injected Fiedler solver failure (simulated Lanczos "
            "non-convergence / NaN eigenvector)",
            method="lanczos",
            injected=True,
        )

    if n <= DENSE_THRESHOLD and not force_lanczos:
        lap = dense_laplacian(graph)
        try:
            _, vecs = np.linalg.eigh(lap)
        except np.linalg.LinAlgError as exc:
            raise SpectralConvergenceError(
                f"dense eigensolve failed: {exc}", method="dense"
            ) from exc
        # eigh returns eigenvalues ascending; column 1 is the Fiedler vector.
        vec = vecs[:, 1].copy()
        if not np.isfinite(vec).all():
            raise SpectralConvergenceError(
                "dense eigensolve produced a non-finite Fiedler vector",
                method="dense",
            )
        return vec

    op = LaplacianOperator(graph)
    ones = np.full(n, 1.0 / np.sqrt(n))
    _, vec = lanczos_smallest(
        op.matvec,
        n,
        rng=rng,
        start=start,
        deflate=[ones],
        krylov_dim=krylov_dim,
        restarts=restarts,
        tol=tol,
    )
    return vec


def algebraic_connectivity(graph, rng=None) -> float:
    """λ₂ of the Laplacian (0 iff the graph is disconnected)."""
    n = graph.nvtxs
    if n <= 1:
        return 0.0
    if n <= DENSE_THRESHOLD:
        lap = dense_laplacian(graph)
        vals = np.linalg.eigvalsh(lap)
        return float(vals[1])
    op = LaplacianOperator(graph)
    ones = np.full(n, 1.0 / np.sqrt(n))
    lam, _ = lanczos_smallest(op.matvec, n, rng=as_generator(rng), deflate=[ones])
    return float(lam)
