"""Graph Laplacian operators.

The combinatorial Laplacian of a weighted graph is ``L = D − A`` where
``D`` is the diagonal of weighted degrees.  Spectral partitioning needs two
things from it: dense assembly for small (coarsest) graphs, and a fast
matrix-vector product for Lanczos on large graphs.  The matvec is built on
``np.bincount`` over a precomputed row-index expansion — the standard trick
for CSR y = Ax in pure NumPy without scipy.
"""

from __future__ import annotations

import numpy as np


def dense_laplacian(graph) -> np.ndarray:
    """Assemble ``L = D − A`` as a dense float64 matrix (small graphs only)."""
    n = graph.nvtxs
    lap = np.zeros((n, n), dtype=np.float64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    lap[src, graph.adjncy] = -graph.adjwgt
    lap[np.arange(n), np.arange(n)] = weighted_degrees(graph)
    return lap


def weighted_degrees(graph) -> np.ndarray:
    """Weighted degree (row sum of A) per vertex, float64."""
    n = graph.nvtxs
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.xadj))
    return np.bincount(src, weights=graph.adjwgt, minlength=n)


class LaplacianOperator:
    """Matrix-free ``y = Lx`` for Lanczos iterations.

    Precomputes the row-index expansion once; each matvec is then two
    vectorised passes over the edge arrays (gather + scatter-add).
    """

    def __init__(self, graph):
        self.n = graph.nvtxs
        self._src = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(graph.xadj)
        )
        self._dst = graph.adjncy
        self._w = graph.adjwgt.astype(np.float64)
        self.degrees = np.bincount(self._src, weights=self._w, minlength=self.n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``Lx`` for a float vector ``x``."""
        ax = np.bincount(self._src, weights=self._w * x[self._dst], minlength=self.n)
        return self.degrees * x - ax

    def spectral_upper_bound(self) -> float:
        """``2 · max weighted degree`` ≥ λ_max(L); used to shift spectra."""
        return 2.0 * float(self.degrees.max(initial=0.0))
