"""Lanczos iteration for the small end of a Laplacian spectrum.

The Fiedler vector is the eigenvector of the second-smallest eigenvalue of
``L``.  Since the smallest eigenpair is known exactly (λ=0 with the
constant vector, for a connected graph), we run Lanczos on ``L`` while
**deflating the constant vector**: the start vector and every Lanczos basis
vector are kept orthogonal to 𝟙.  Full reorthogonalisation is used — the
Krylov dimensions here are small (tens), so the O(nk²) cost is irrelevant
next to the robustness it buys (plain Lanczos loses orthogonality and
produces ghost eigenvalues, which for partitioning means garbage splits).

This module is self-contained (no scipy): the tridiagonal eigenproblem is
solved with ``numpy.linalg.eigh_tridiagonal``-equivalent via dense ``eigh``
on the k×k tridiagonal matrix, which is exact and cheap at these sizes.

Failure is **typed**, never silent: when the restarts are exhausted with a
residual still far above tolerance, or any quantity goes non-finite, the
iteration raises :class:`~repro.utils.errors.SpectralConvergenceError`
instead of returning a garbage vector (a garbage Fiedler vector means a
garbage split — the caller must get the chance to fall back).  A residual
within :data:`ACCEPT_FACTOR` × ``tol`` is accepted as "near-converged":
for partitioning, an almost-converged Fiedler vector is perfectly usable,
only true non-convergence is an error.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import SpectralConvergenceError
from repro.utils.rng import as_generator

#: Relative-residual slack over ``tol`` still accepted as near-converged.
ACCEPT_FACTOR = 1e3


def _orthonormalize_against(v, basis):
    """Remove components of ``v`` along each (unit) vector in ``basis``."""
    for q in basis:
        v -= np.dot(q, v) * q
    return v


def lanczos_smallest(
    matvec,
    n,
    *,
    rng=None,
    start=None,
    deflate=None,
    krylov_dim=40,
    restarts=8,
    tol=1e-8,
):
    """Smallest eigenpair of a symmetric PSD operator, with deflation.

    Parameters
    ----------
    matvec:
        Callable computing ``A @ x``.
    n:
        Dimension.
    start:
        Optional warm-start vector (MSB interpolates the coarse Fiedler
        vector here).  A random vector is used otherwise.
    deflate:
        List of unit vectors to project out (the constant vector for the
        Fiedler computation).
    krylov_dim, restarts:
        Krylov space size per cycle and number of restart cycles; each
        restart re-seeds with the current best Ritz vector.
    tol:
        Relative residual tolerance on ``‖Ax − λx‖ / max(λ, 1)``.

    Returns
    -------
    (eigenvalue, eigenvector):
        The smallest eigenpair in the deflated subspace.

    Raises
    ------
    repro.utils.errors.SpectralConvergenceError
        On a non-finite eigenpair, a failed tridiagonal eigensolve, or a
        final residual above ``ACCEPT_FACTOR × tol × max(|λ|, 1)``.
    """
    rng = as_generator(rng)
    deflate = [] if deflate is None else [np.asarray(q, dtype=np.float64) for q in deflate]
    if start is None:
        v = rng.standard_normal(n)
    else:
        v = np.array(start, dtype=np.float64, copy=True)

    krylov_dim = min(krylov_dim, max(2, n - len(deflate)))
    lam = None
    residual = np.inf
    for _ in range(restarts):
        v = _orthonormalize_against(v, deflate)
        norm = np.linalg.norm(v)
        if norm < 1e-30:  # degenerate start (e.g. constant); re-randomise
            v = _orthonormalize_against(rng.standard_normal(n), deflate)
            norm = np.linalg.norm(v)
        v = v / norm

        qs = [v]
        alphas: list[float] = []
        betas: list[float] = []
        for j in range(krylov_dim):
            w = matvec(qs[j])
            alpha = float(np.dot(qs[j], w))
            alphas.append(alpha)
            w -= alpha * qs[j]
            if j > 0:
                w -= betas[j - 1] * qs[j - 1]
            # Full reorthogonalisation against the basis and deflation space.
            w = _orthonormalize_against(w, deflate)
            w = _orthonormalize_against(w, qs)
            beta = float(np.linalg.norm(w))
            if beta < 1e-12 or j == krylov_dim - 1:
                break
            betas.append(beta)
            qs.append(w / beta)

        k = len(alphas)
        tri = np.zeros((k, k))
        tri[np.arange(k), np.arange(k)] = alphas
        if k > 1:
            off = np.array(betas[: k - 1])
            tri[np.arange(k - 1), np.arange(1, k)] = off
            tri[np.arange(1, k), np.arange(k - 1)] = off
        try:
            evals, evecs = np.linalg.eigh(tri)
        except np.linalg.LinAlgError as exc:
            raise SpectralConvergenceError(
                f"tridiagonal eigensolve failed ({exc}); the Krylov recursion "
                "went non-finite",
                method="lanczos",
                tol=tol,
            ) from exc
        ritz = evecs[:, 0]
        x = np.zeros(n)
        for coeff, q in zip(ritz, qs):
            x += coeff * q
        lam = float(evals[0])
        x = _orthonormalize_against(x, deflate)
        xnorm = np.linalg.norm(x)
        if xnorm < 1e-30:
            v = rng.standard_normal(n)
            residual = np.inf  # v is a fresh random vector, not a Ritz vector
            continue
        x /= xnorm
        residual = float(np.linalg.norm(matvec(x) - lam * x))
        v = x
        if residual <= tol * max(abs(lam), 1.0):
            break

    if lam is None or not np.isfinite(lam) or not np.isfinite(v).all():
        raise SpectralConvergenceError(
            "Lanczos produced a non-finite eigenpair",
            method="lanczos",
            residual=None if not np.isfinite(residual) else residual,
            tol=tol,
        )
    scale = max(abs(lam), 1.0)
    if not np.isfinite(residual) or residual > ACCEPT_FACTOR * tol * scale:
        raise SpectralConvergenceError(
            f"Lanczos did not converge after {restarts} restarts: residual "
            f"{residual:.3e} exceeds {ACCEPT_FACTOR:g}×tol ({tol:g}) × "
            f"max(|λ|, 1)",
            method="lanczos",
            residual=None if not np.isfinite(residual) else residual,
            tol=tol,
        )
    return lam, v
