"""Spectral nested dissection (SND) — Pothen, Simon & Wang baseline.

§4.3: "Spectral nested dissection (SND) [32] is a widely used ordering
algorithm for ordering matrices for parallel factorization.  As in the case
of MLND, the minimum vertex cover algorithm was used to compute a vertex
separator from the edge separator."  The only difference from MLND is the
bisector: the Fiedler-median split of each subgraph, which also makes SND
far slower — every dissection level pays for Fiedler vectors of
еach subgraph instead of a multilevel cut.
"""

from __future__ import annotations

from repro.core.options import DEFAULT_OPTIONS
from repro.ordering.base import Ordering
from repro.ordering.nested_dissection import nested_dissection_ordering
from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import fault_injector
from repro.spectral.bisection import spectral_bisection
from repro.utils.rng import as_generator


def snd_ordering(
    graph,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    leaf_size: int = 120,
) -> Ordering:
    """Spectral nested dissection ordering of ``graph``.

    An injected ``lanczos`` fault (or a genuine spectral non-convergence)
    on a subgraph makes the driver fall back to MMD for that subtree — SND
    never dies on a hard eigenproblem.
    """
    rng = as_generator(rng if rng is not None else options.seed)
    faults = fault_injector(options)
    guard = None
    if options.deadline is not None:
        guard = DeadlineGuard(options.deadline)

    def bisector(subgraph, child_rng):
        return spectral_bisection(subgraph, rng=child_rng, faults=faults).where

    return nested_dissection_ordering(
        graph, bisector, rng, leaf_size=leaf_size, method="snd",
        options=options, guard=guard,
    )
