"""Symbolic Cholesky factorization: fill, operation counts, concurrency.

Section 4.3 of the paper evaluates orderings by the **number of operations**
required to factor the reordered matrix, and argues nested-dissection
orderings additionally win on **concurrency** (elimination trees that are
short and balanced rather than "long and slender").  This module computes
all of those quantities from the graph and a permutation, with no numeric
factorization:

* :func:`elimination_tree` — Liu's O(m·α(n)) algorithm with path
  compression;
* :func:`symbolic_factor` — per-column nonzero structure of the Cholesky
  factor L by the children-merge recurrence
  ``struct(j) = adj⁺(j) ∪ ⋃_{parent(c)=j} (struct(c) ∖ {c, j})``;
* :class:`FactorStats` — fill, flop count, elimination-tree height and the
  critical-path opcount (a machine-independent concurrency proxy: parallel
  factor time with unlimited processors ≈ critical path, so
  ``opcount / critical_path`` is the available speedup).

Flop model: factoring column ``j`` with ``c_j`` off-diagonal nonzeros costs
one square root, ``c_j`` divisions and ``c_j (c_j + 1) / 2``
multiply-subtract pairs; we report
``ops(j) = (c_j + 1)² ≈`` multiplications + divisions, the same quadratic
count whose ratios the paper compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import OrderingError


def _check_permutation(n, perm):
    perm = np.asarray(perm, dtype=np.int64)
    if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
        raise OrderingError("perm is not a permutation of 0..n-1")
    return perm


def elimination_tree(graph, perm) -> np.ndarray:
    """Parent array of the elimination tree under ordering ``perm``.

    ``perm[k]`` is the vertex eliminated at step ``k`` (new→old).  Returns
    ``parent`` in *new* labels: ``parent[k]`` is the etree parent of the
    k-th eliminated vertex, or ``-1`` for roots.  Liu's algorithm with path
    compression (virtual forest), O(m · α(n)).
    """
    n = graph.nvtxs
    perm = _check_permutation(n, perm)
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)

    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    xadj, adjncy = graph.xadj, graph.adjncy
    for j in range(n):
        v = perm[j]
        for u in adjncy[xadj[v] : xadj[v + 1]]:
            i = iperm[u]
            if i >= j:
                continue
            # Walk i's virtual root, compressing the path onto j.
            while ancestor[i] != -1 and ancestor[i] != j:
                next_i = ancestor[i]
                ancestor[i] = j
                i = next_i
            if ancestor[i] == -1:
                ancestor[i] = j
                parent[i] = j
    return parent


def symbolic_factor(graph, perm):
    """Column structures of L under ordering ``perm``.

    Returns ``(counts, parent)`` where ``counts[j]`` is the number of
    off-diagonal nonzeros in column ``j`` of L (new labels) and ``parent``
    is the elimination tree.  Runs the children-merge recurrence with
    NumPy set unions per column; memory is O(|L|).
    """
    n = graph.nvtxs
    perm = _check_permutation(n, perm)
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)

    xadj, adjncy = graph.xadj, graph.adjncy
    children: list[list[int]] = [[] for _ in range(n)]
    structs: list = [None] * n
    counts = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)

    for j in range(n):
        v = perm[j]
        nbrs = iperm[adjncy[xadj[v] : xadj[v + 1]]]
        pieces = [nbrs[nbrs > j]]
        for c in children[j]:
            s = structs[c]
            pieces.append(s[s > j])
            structs[c] = None  # free as soon as the parent has consumed it
        merged = np.unique(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)
        structs[j] = merged
        counts[j] = len(merged)
        if len(merged):
            p = int(merged[0])  # smallest above-diagonal row index = parent
            parent[j] = p
            children[p].append(j)
    return counts, parent


def symbolic_structure(graph, perm):
    """Full column structures of L (new labels), for numeric factorization.

    Like :func:`symbolic_factor` but *retains* every column's sorted
    below-diagonal row indices instead of freeing them; memory is O(|L|).
    Returns ``(structs, parent)`` with ``structs[j]`` an int64 array of
    rows ``> j``.
    """
    n = graph.nvtxs
    perm = _check_permutation(n, perm)
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)

    xadj, adjncy = graph.xadj, graph.adjncy
    children: list[list[int]] = [[] for _ in range(n)]
    structs: list = [None] * n
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        v = perm[j]
        nbrs = iperm[adjncy[xadj[v] : xadj[v + 1]]]
        pieces = [nbrs[nbrs > j]]
        for c in children[j]:
            s = structs[c]
            pieces.append(s[s > j])
        merged = np.unique(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)
        structs[j] = merged
        if len(merged):
            p = int(merged[0])
            parent[j] = p
            children[p].append(j)
    return structs, parent


@dataclass(frozen=True)
class FactorStats:
    """Summary of a symbolic factorization.

    Attributes
    ----------
    nnz_factor:
        Nonzeros in L including the diagonal.
    fill:
        Nonzeros of L (below diagonal) minus nonzeros of the lower
        triangle of A — the fill-in the ordering induced.
    opcount:
        ``Σ_j (c_j + 1)²`` — the quadratic flop count (see module doc).
    tree_height:
        Height of the elimination tree in vertices (longest chain).
    critical_path_ops:
        Maximum root-to-leaf sum of per-column opcounts: parallel
        factorization time with unbounded processors.
    """

    nnz_factor: int
    fill: int
    opcount: int
    tree_height: int
    critical_path_ops: int

    @property
    def available_parallelism(self) -> float:
        """``opcount / critical_path_ops`` — the paper's concurrency point."""
        return self.opcount / max(1, self.critical_path_ops)


def factor_stats(graph, perm) -> FactorStats:
    """Compute :class:`FactorStats` for ``graph`` under ordering ``perm``."""
    counts, parent = symbolic_factor(graph, perm)
    n = graph.nvtxs
    ops = (counts + 1) ** 2
    opcount = int(ops.sum())
    nnz_factor = int(counts.sum()) + n
    fill = int(counts.sum()) - graph.nedges

    # Heights and critical paths bottom-up: process in index order — a
    # child always has a smaller new-label than its parent.
    height = np.ones(n, dtype=np.int64)
    path = ops.astype(np.int64).copy()
    for j in range(n):
        p = parent[j]
        if p >= 0:
            if height[j] + 1 > height[p]:
                height[p] = height[j] + 1
            if path[j] + ops[p] > path[p]:
                path[p] = path[j] + ops[p]
    tree_height = int(height.max(initial=0))
    critical = int(path.max(initial=0))
    return FactorStats(
        nnz_factor=nnz_factor,
        fill=fill,
        opcount=opcount,
        tree_height=tree_height,
        critical_path_ops=critical,
    )
