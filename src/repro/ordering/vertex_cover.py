"""Vertex separators from edge separators via minimum vertex cover.

Nested dissection needs a *vertex* separator; the multilevel partitioner
produces an *edge* separator.  As in the paper ("a vertex separator is
computed from an edge separator by finding the minimum vertex cover"), the
cut edges form a bipartite graph between the two boundary sets, and by
König's theorem its minimum vertex cover — computable exactly from a
maximum matching — is the smallest vertex set covering every cut edge,
hence the smallest separator obtainable from this edge separator.

Maximum bipartite matching is Hopcroft–Karp, O(E√V) on the boundary
subgraph (tiny compared to the graph).
"""

from __future__ import annotations

from collections import deque

import numpy as np


def boundary_bipartite(graph, where):
    """Cut edges as a bipartite adjacency.

    Returns ``(a_vertices, b_vertices, adj)`` where ``a_vertices`` are the
    part-0 endpoints of cut edges, ``b_vertices`` the part-1 endpoints, and
    ``adj[i]`` lists indices into ``b_vertices`` adjacent to
    ``a_vertices[i]``.
    """
    where = np.asarray(where)
    src = graph.edge_sources()
    dst = graph.adjncy
    cross = (where[src] == 0) & (where[dst] == 1)
    a_raw = src[cross]
    b_raw = dst[cross]
    a_vertices, a_idx = np.unique(a_raw, return_inverse=True)
    b_vertices, b_idx = np.unique(b_raw, return_inverse=True)
    adj: list[list[int]] = [[] for _ in range(len(a_vertices))]
    for ai, bi in zip(a_idx, b_idx):
        adj[ai].append(int(bi))
    return a_vertices, b_vertices, adj


def hopcroft_karp(n_left, n_right, adj):
    """Maximum bipartite matching.

    Returns ``(match_left, match_right)``: partner index or -1.  Standard
    Hopcroft–Karp with BFS layering and DFS augmentation.
    """
    INF = np.iinfo(np.int64).max
    match_l = [-1] * n_left
    match_r = [-1] * n_right
    dist = [0] * n_left

    def bfs():
        q = deque()
        found = False
        for u in range(n_left):
            if match_l[u] == -1:
                dist[u] = 0
                q.append(u)
            else:
                dist[u] = INF
        while q:
            u = q.popleft()
            for v in adj[u]:
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    q.append(w)
        return found

    def dfs(u):
        for v in adj[u]:
            w = match_r[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n_left + n_right + 1000))
    try:
        while bfs():
            for u in range(n_left):
                if match_l[u] == -1:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    return match_l, match_r


def minimum_vertex_cover(n_left, n_right, adj, match_l, match_r):
    """König's construction: min vertex cover from a maximum matching.

    Let ``Z`` be the vertices reachable from unmatched left vertices by
    alternating paths (unmatched edges left→right, matched right→left);
    the cover is ``(L ∖ Z) ∪ (R ∩ Z)``.  Returns boolean masks
    ``(cover_left, cover_right)``.
    """
    z_left = [False] * n_left
    z_right = [False] * n_right
    q = deque(u for u in range(n_left) if match_l[u] == -1)
    for u in q:
        z_left[u] = True
    while q:
        u = q.popleft()
        for v in adj[u]:
            if not z_right[v]:
                z_right[v] = True
                w = match_r[v]
                if w != -1 and not z_left[w]:
                    z_left[w] = True
                    q.append(w)
    cover_left = np.array([not z for z in z_left], dtype=bool)
    cover_right = np.array(z_right, dtype=bool)
    return cover_left, cover_right


def vertex_separator_from_bisection(graph, where):
    """Smallest vertex separator covering the cut of bisection ``where``.

    Returns ``sep``, an int64 array of separator vertex ids.  Removing
    ``sep`` disconnects the remaining part-0 vertices from the remaining
    part-1 vertices (verified by the tests via BFS).
    """
    a_vertices, b_vertices, adj = boundary_bipartite(graph, where)
    if len(a_vertices) == 0:
        return np.empty(0, dtype=np.int64)
    match_l, match_r = hopcroft_karp(len(a_vertices), len(b_vertices), adj)
    cover_left, cover_right = minimum_vertex_cover(
        len(a_vertices), len(b_vertices), adj, match_l, match_r
    )
    return np.sort(
        np.concatenate([a_vertices[cover_left], b_vertices[cover_right]])
    )
