"""Fill-reducing sparse-matrix ordering (§4.3 of the paper).

* :func:`mlnd_ordering` — multilevel nested dissection (the paper's);
* :func:`mmd_ordering` — multiple minimum degree (Liu) baseline;
* :func:`snd_ordering` — spectral nested dissection baseline;
* :func:`factor_stats` / :class:`FactorStats` — symbolic factorization
  metrics (fill, opcount, elimination-tree height, critical path);
* :func:`vertex_separator_from_bisection` — minimum-vertex-cover
  separators (König/Hopcroft–Karp);
* :class:`Ordering` — the shared result record.
"""

from repro.ordering.base import Ordering
from repro.ordering.elimination import (
    FactorStats,
    elimination_tree,
    factor_stats,
    symbolic_factor,
)
from repro.ordering.mmd import minimum_degree_ordering, mmd_ordering
from repro.ordering.nested_dissection import (
    mlnd_ordering,
    nested_dissection_ordering,
)
from repro.ordering.parallel_sim import (
    ParallelFactorStats,
    simulate_parallel_factorization,
)
from repro.ordering.separator_refine import (
    build_labelling,
    is_valid_separator_labelling,
    refine_vertex_separator,
    separator_weight,
)
from repro.ordering.snd import snd_ordering
from repro.ordering.vertex_cover import (
    boundary_bipartite,
    hopcroft_karp,
    minimum_vertex_cover,
    vertex_separator_from_bisection,
)

__all__ = [
    "Ordering",
    "mlnd_ordering",
    "nested_dissection_ordering",
    "mmd_ordering",
    "minimum_degree_ordering",
    "snd_ordering",
    "factor_stats",
    "FactorStats",
    "elimination_tree",
    "symbolic_factor",
    "vertex_separator_from_bisection",
    "boundary_bipartite",
    "hopcroft_karp",
    "minimum_vertex_cover",
    "simulate_parallel_factorization",
    "ParallelFactorStats",
    "refine_vertex_separator",
    "build_labelling",
    "is_valid_separator_labelling",
    "separator_weight",
]
