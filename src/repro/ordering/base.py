"""Ordering result record shared by MLND, MMD and SND."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import OrderingError


@dataclass
class Ordering:
    """A fill-reducing ordering.

    Attributes
    ----------
    perm:
        ``perm[k]`` is the vertex eliminated at step ``k`` (new → old).
    iperm:
        Inverse: ``iperm[v]`` is the elimination step of vertex ``v``
        (old → new).
    method:
        Human-readable producer tag ("mlnd", "mmd", "snd", "natural").
    """

    perm: np.ndarray
    iperm: np.ndarray
    method: str = ""
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_perm(cls, perm, method="") -> "Ordering":
        """Build from a new→old permutation, deriving the inverse."""
        perm = np.asarray(perm, dtype=np.int64)
        n = len(perm)
        if not np.array_equal(np.sort(perm), np.arange(n)):
            raise OrderingError("perm is not a permutation of 0..n-1")
        iperm = np.empty(n, dtype=np.int64)
        iperm[perm] = np.arange(n)
        return cls(perm=perm, iperm=iperm, method=method)

    @classmethod
    def identity(cls, n, method="natural") -> "Ordering":
        """The natural (identity) ordering."""
        eye = np.arange(n, dtype=np.int64)
        return cls(perm=eye.copy(), iperm=eye.copy(), method=method)

    def verify(self) -> None:
        """Raise unless perm/iperm are mutually inverse permutations."""
        n = len(self.perm)
        if not np.array_equal(np.sort(self.perm), np.arange(n)):
            raise OrderingError("perm is not a permutation")
        if not np.array_equal(self.perm[self.iperm], np.arange(n)):
            raise OrderingError("iperm is not the inverse of perm")

    def __len__(self) -> int:
        return len(self.perm)
