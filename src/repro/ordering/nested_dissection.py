"""Nested dissection orderings: MLND (the paper's) and the generic driver.

"Nested dissection recursively splits a graph into almost equal halves by
selecting a vertex separator … The vertices of the graph are numbered such
that at each level of recursion, the separator vertices are numbered after
the vertices in the partitions." (§2)

The driver is parametric in the bisection routine, so the paper's MLND
(multilevel bisection + minimum-vertex-cover separator) and the SND
baseline (spectral bisection + the same separator construction) share all
of the recursion, numbering and leaf handling:

* separators are numbered **last** within their range, recursively;
* recursion stops at ``leaf_size`` vertices; leaves are ordered by MMD,
  the standard practice (and what METIS does) — on tiny subgraphs minimum
  degree is excellent and dissection overhead is pure loss;
* disconnected subgraphs are split into components first (a component
  boundary is a free separator of size zero).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.sanitize import sanitizer
from repro.core.multilevel import bisect as ml_bisect
from repro.core.options import DEFAULT_OPTIONS
from repro.graph.components import connected_components, extract_subgraph
from repro.obs.tracer import NULL as NULL_TRACER
from repro.obs.tracer import NULL_SPAN, resolve_tracer
from repro.ordering.base import Ordering
from repro.ordering.mmd import mmd_ordering
from repro.ordering.vertex_cover import vertex_separator_from_bisection
from repro.perf.workers import (
    fan_depth_for,
    resolve_worker_timeout,
    resolve_workers,
)
from repro.resilience.deadline import DeadlineGuard
from repro.resilience.faults import fault_injector, worker_faults_only
from repro.resilience.report import ResilienceReport
from repro.resilience.supervisor import BranchSupervisor
from repro.utils.errors import DeadlineExceededError, ReproError, SanitizerError
from repro.utils.rng import as_generator, spawn_child


def mlnd_ordering(
    graph,
    options=DEFAULT_OPTIONS,
    rng=None,
    *,
    leaf_size: int = 120,
    refine_separator: bool = True,
) -> Ordering:
    """Multilevel nested dissection (MLND) — the paper's ordering algorithm.

    Uses the multilevel bisector (HEM + GGGP + BKLGR by default) for the
    edge separator at every level and minimum vertex cover for the vertex
    separator.  One fault injector, resilience report and deadline guard
    span the whole dissection; the report lands in
    ``ordering.meta["resilience"]``.
    """
    rng = as_generator(rng if rng is not None else options.seed)
    faults = fault_injector(options)
    report = ResilienceReport()
    guard = None
    if options.deadline is not None:
        guard = DeadlineGuard(options.deadline)
    trc, owned_trace = resolve_tracer(
        None, options, run="mlnd", nvtxs=graph.nvtxs, nedges=graph.nedges
    )

    def bisector(subgraph, child_rng):
        return ml_bisect(
            subgraph, options, child_rng, faults=faults, report=report,
            guard=guard, tracer=trc,
        ).bisection.where

    # MLND's bisector is reconstructible from picklable state (just the
    # options), so its subtrees can run in supervised pool workers — same
    # gating as k-way ``partition``: only a fault spec naming in-process
    # phase sites forces sequential execution.  Generic/SND dissections
    # pass an arbitrary closure and always run sequentially.
    branch_job = None
    if resolve_workers(options) > 1 and worker_faults_only(faults):
        branch_job = partial(
            _mlnd_branch_job,
            options=options,
            leaf_size=leaf_size,
            refine_separator=refine_separator,
        )

    try:
        return nested_dissection_ordering(
            graph, bisector, rng, leaf_size=leaf_size, method="mlnd",
            refine_separator=refine_separator, options=options, report=report,
            guard=guard, tracer=trc, branch_job=branch_job, faults=faults,
        )
    finally:
        if owned_trace:
            trc.close()


def _mlnd_branch_job(sub, rng, *, options, leaf_size, refine_separator,
                     guard=None):
    """Dissect one MLND subtree in a pool worker.

    Rebuilds the multilevel bisector from ``options`` and returns the
    subtree's local permutation plus its resilience events for the parent
    to merge.  Tracing is explicitly off (a pool worker must not resolve
    the ambient trace target and race the parent for the sink).  ``guard``
    is only passed by the supervisor's sequential fallback, which runs
    this in the *parent* process under the remaining deadline budget;
    pool submissions never carry one — their time budget is enforced
    parent-side via future timeouts.
    """
    report = ResilienceReport()
    faults = fault_injector(options)
    san = sanitizer(options)

    def bisector(subgraph, child_rng):
        return ml_bisect(
            subgraph, options, child_rng, faults=faults, report=report,
            guard=guard, tracer=NULL_TRACER,
        ).bisection.where

    perm = np.empty(sub.nvtxs, dtype=np.int64)
    _dissect(sub, bisector, rng, perm, leaf_size, refine_separator,
             san, report, guard, NULL_SPAN)
    return perm, report


def nested_dissection_ordering(
    graph,
    bisector,
    rng=None,
    *,
    leaf_size: int = 120,
    method: str = "nd",
    refine_separator: bool = True,
    options=None,
    report=None,
    guard=None,
    tracer=None,
    branch_job=None,
    faults=None,
) -> Ordering:
    """Generic nested-dissection driver.

    Parameters
    ----------
    bisector:
        Callable ``(subgraph, rng) → where`` returning a 0/1 assignment.
    leaf_size:
        Subgraphs at or below this size are ordered with MMD.
    refine_separator:
        Shrink each minimum-vertex-cover separator further with greedy
        node-FM refinement (see :mod:`repro.ordering.separator_refine`)
        before recursing — what the released METIS does.
    options:
        Only consulted for ``sanitize``: when set (or ``REPRO_SANITIZE=1``)
        every separator is checked to actually separate its subgraph.
    report:
        Optional :class:`~repro.resilience.report.ResilienceReport`; a
        fresh one is created otherwise.  Attached to the result as
        ``ordering.meta["resilience"]``.  A subgraph whose bisector raises
        a :class:`~repro.utils.errors.ReproError` is ordered with MMD
        instead (recorded as a fallback); sanitizer failures still
        propagate — they mean the pipeline is broken, not the input.
    guard:
        Optional :class:`~repro.resilience.deadline.DeadlineGuard`; once it
        expires, every remaining subgraph is ordered with MMD (recorded as
        a degradation) — dissection never raises on deadline.
    tracer:
        Optional threaded :class:`~repro.obs.tracer.Tracer` (default:
        ``options.trace`` / ``REPRO_TRACE``).  The dissection runs inside
        one ``dissect`` span carrying ``nd.separator`` / ``nd.fallback`` /
        ``nd.degraded`` events, with each sub-bisection's phase spans
        nested under it.
    branch_job:
        Optional *picklable* callable ``(subgraph, rng) → (perm, report)``
        dissecting one subtree in a pool worker (it must also accept a
        ``guard`` keyword for the supervisor's sequential fallback).  When
        provided and the resolved worker count exceeds 1, the driver fans
        independent subtrees across a supervised process pool
        (:class:`~repro.resilience.supervisor.BranchSupervisor`): waits
        are bounded by ``worker_timeout`` and the remaining deadline
        budget, crashed or hung workers are retried and finally demoted
        to in-process execution.  Per-entry pre-spawned RNGs make the
        permutation bit-identical to the sequential run.
    faults:
        Optional fault injector; the supervisor consults its ``worker_*``
        sites at submission time.

    Returns
    -------
    Ordering
    """
    rng = as_generator(rng)
    san = sanitizer(options)
    if report is None:
        report = ResilienceReport()
    n = graph.nvtxs
    perm = np.empty(n, dtype=np.int64)
    trc, owned_trace = resolve_tracer(tracer, options, run=method, nvtxs=n)
    workers = resolve_workers(options)

    try:
        with trc.span("dissect", method=method) as sp:
            if branch_job is not None and workers > 1:
                with BranchSupervisor(
                    workers,
                    fan_depth=fan_depth_for(workers),
                    timeout=resolve_worker_timeout(options),
                    guard=guard,
                    max_retries=(
                        2 if options is None else options.worker_retries
                    ),
                    report=report,
                    span=sp,
                    faults=faults,
                ) as par:
                    _dissect(
                        graph, bisector, rng, perm, leaf_size,
                        refine_separator, san, report, guard, sp,
                        par=par, branch_job=branch_job,
                    )
                    for meta, branch in par.drain():
                        vmap, lo, hi = meta
                        sub_perm, sub_report = branch
                        perm[lo:hi] = vmap[sub_perm]
                        report.merge(sub_report)
            else:
                _dissect(
                    graph, bisector, rng, perm, leaf_size, refine_separator,
                    san, report, guard, sp,
                )
    finally:
        if owned_trace:
            trc.close()

    ordering = Ordering.from_perm(perm, method)
    ordering.meta["resilience"] = report
    return ordering


def _dissect(graph, bisector, rng, perm, leaf_size, refine_separator, san,
             report, guard, sp, *, par=None, branch_job=None):
    """The dissection loop of :func:`nested_dissection_ordering`.

    Fills ``perm`` in place; ``sp`` is the enclosing ``dissect`` span (or a
    null span when tracing is off).  Every stack entry owns a dedicated
    generator, spawned by its parent *before* any sibling runs, so the
    result is invariant to processing order — which lets ``par`` ship
    whole subtrees at ``depth >= par.fan_depth`` to pool workers via
    ``branch_job`` without changing a bit of the permutation.
    """
    n = graph.nvtxs
    # Explicit stack of (subgraph, vmap, lo, hi, depth, rng) jobs;
    # positions [lo, hi) belong to the subgraph.  Avoids Python recursion
    # limits on deep dissections of path-like graphs.
    stack = [(graph, np.arange(n, dtype=np.int64), 0, n, 0, rng)]
    while stack:
        sub, vmap, lo, hi, depth, sub_rng = stack.pop()
        nv = sub.nvtxs
        if nv == 0:
            continue
        if nv <= leaf_size:
            leaf = mmd_ordering(sub)
            perm[lo:hi] = vmap[leaf.perm]
            continue
        if (
            par is not None
            and depth >= par.fan_depth
            and (guard is None or not guard.expired())
        ):
            # Workers receive no guard object; the supervisor bounds their
            # wall-clock parent-side.  Once the budget is gone, subtrees
            # fall through to the MMD degradation below instead.
            par.submit(branch_job, sub, sub_rng, meta=(vmap, lo, hi))
            continue

        comp = connected_components(sub)
        ncomp = int(comp.max()) + 1
        if ncomp > 1:
            # Order components independently, side by side.
            pos = lo
            for c in range(ncomp):
                ids = np.flatnonzero(comp == c).astype(np.int64)
                csub, _ = extract_subgraph(sub, ids)
                stack.append((csub, vmap[ids], pos, pos + len(ids), depth,
                              spawn_child(sub_rng)))
                pos += len(ids)
            continue

        if guard is not None and guard.expired():
            # Budget gone: MMD the rest of the tree — valid ordering, no
            # more dissection levels.
            leaf = mmd_ordering(sub)
            perm[lo:hi] = vmap[leaf.perm]
            report.record(
                "degradation",
                "ordering",
                f"deadline expired; MMD on remaining {nv}-vertex subgraph",
                level=depth,
            )
            if sp:
                sp.event(
                    "nd.degraded", reason="deadline", nvtxs=nv, depth=depth
                )
            continue

        # Every stream this entry uses is spawned from its own generator in
        # a fixed order, before any child runs.
        rng_bisect = spawn_child(sub_rng)
        rng_refine = spawn_child(sub_rng)
        rng_a = spawn_child(sub_rng)
        rng_b = spawn_child(sub_rng)
        try:
            where = np.asarray(bisector(sub, rng_bisect))
        except SanitizerError:
            raise  # a broken invariant is a bug, not a recoverable fault
        except DeadlineExceededError:
            leaf = mmd_ordering(sub)
            perm[lo:hi] = vmap[leaf.perm]
            report.record(
                "degradation",
                "ordering",
                f"deadline expired mid-bisection; MMD on {nv}-vertex "
                "subgraph",
                level=depth,
            )
            if sp:
                sp.event(
                    "nd.degraded",
                    reason="deadline-mid-bisection",
                    nvtxs=nv,
                    depth=depth,
                )
            continue
        except ReproError as exc:
            leaf = mmd_ordering(sub)
            perm[lo:hi] = vmap[leaf.perm]
            report.record(
                "fallback",
                "ordering",
                f"bisector failed ({exc}); MMD on {nv}-vertex subgraph",
                level=depth,
            )
            if sp:
                sp.event(
                    "nd.fallback",
                    reason="bisector-error",
                    nvtxs=nv,
                    depth=depth,
                )
            continue
        sep = vertex_separator_from_bisection(sub, where)
        if refine_separator and len(sep):
            from repro.ordering.separator_refine import (
                build_labelling,
                refine_vertex_separator,
            )

            where3 = build_labelling(sub, where, sep)
            cap = int(np.ceil(0.55 * sub.total_vwgt()))
            refine_vertex_separator(
                sub, where3, rng_refine, maxpwgt=(cap, cap)
            )
            a_ids = np.flatnonzero(where3 == 0).astype(np.int64)
            b_ids = np.flatnonzero(where3 == 1).astype(np.int64)
            sep = np.flatnonzero(where3 == 2).astype(np.int64)
        else:
            in_sep = np.zeros(nv, dtype=bool)
            in_sep[sep] = True
            a_ids = np.flatnonzero((where == 0) & ~in_sep).astype(np.int64)
            b_ids = np.flatnonzero((where == 1) & ~in_sep).astype(np.int64)
        if san:
            san.check_separator(sub, a_ids, b_ids, sep, level=depth)
        if len(a_ids) == 0 or len(b_ids) == 0:
            # Degenerate split (can happen on cliques where the separator
            # swallows a side): fall back to MMD on the whole subgraph.
            leaf = mmd_ordering(sub)
            perm[lo:hi] = vmap[leaf.perm]
            report.record(
                "fallback",
                "ordering",
                f"degenerate split (separator swallowed a side); MMD on "
                f"{nv}-vertex subgraph",
                level=depth,
            )
            if sp:
                sp.event(
                    "nd.fallback",
                    reason="degenerate-split",
                    nvtxs=nv,
                    depth=depth,
                )
            continue

        if sp:
            sp.event(
                "nd.separator",
                depth=depth,
                nvtxs=nv,
                sep=len(sep),
                a=len(a_ids),
                b=len(b_ids),
            )
        # Separator vertices are numbered last within [lo, hi).
        sep_lo = hi - len(sep)
        perm[sep_lo:hi] = vmap[sep]
        a_sub, _ = extract_subgraph(sub, a_ids)
        b_sub, _ = extract_subgraph(sub, b_ids)
        stack.append((a_sub, vmap[a_ids], lo, lo + len(a_ids), depth + 1,
                      rng_a))
        stack.append((b_sub, vmap[b_ids], lo + len(a_ids), sep_lo, depth + 1,
                      rng_b))
