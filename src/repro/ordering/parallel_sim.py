"""Parallel sparse factorization simulator.

Section 4.3's closing argument is that MLND's real advantage over MMD is
*concurrency*: "The elimination trees produced by MMD (a) exhibit little
concurrency (long and slender), and (b) are unbalanced so that
subtree-to-subcube mappings lead to significant load imbalances."  The
paper asserts this qualitatively; this module makes it measurable by
simulating a parallel multifrontal factorization on ``p`` processors:

1. per-column work comes from the symbolic factorization
   (:func:`repro.ordering.elimination.symbolic_factor`);
2. the elimination forest is cut into independent subtrees which are
   list-scheduled (LPT) onto processors — the **subtree phase**, perfectly
   parallel up to load imbalance;
3. every column above the cut (the separator/top-of-tree columns) runs in
   tree order with unlimited pipelining between independent chains — the
   **top phase**, bounded below by the tree's critical path.

The simulated parallel time is ``max(subtree loads) + top critical path``;
speedup = serial opcount / parallel time.  This simple model reproduces
exactly the paper's phenomenon: MMD orderings saturate at small speedups
(their top phase is nearly the whole factorization), while nested-
dissection orderings keep scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ordering.elimination import symbolic_factor
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class ParallelFactorStats:
    """Result of simulating a ``p``-processor factorization."""

    processors: int
    serial_ops: int
    parallel_time: int
    subtree_time: int
    top_time: int
    speedup: float
    efficiency: float


def _column_ops(counts: np.ndarray) -> np.ndarray:
    """Per-column flop model; matches FactorStats' ``(c_j + 1)²``."""
    return (counts.astype(np.int64) + 1) ** 2


def simulate_parallel_factorization(graph, perm, processors: int) -> ParallelFactorStats:
    """Simulate factoring ``graph`` (ordered by ``perm``) on ``processors``.

    Returns a :class:`ParallelFactorStats`; ``speedup`` is the headline
    number (how much faster than serial the ordering lets ``p`` processors
    go under an idealised multifrontal schedule).
    """
    if processors < 1:
        raise ConfigurationError("processors must be >= 1")
    counts, parent = symbolic_factor(graph, perm)
    n = len(counts)
    ops = _column_ops(counts) if n else np.zeros(0, dtype=np.int64)
    serial = int(ops.sum())
    if n == 0 or processors == 1:
        return ParallelFactorStats(
            processors=processors,
            serial_ops=serial,
            parallel_time=serial,
            subtree_time=serial,
            top_time=0,
            speedup=1.0,
            efficiency=1.0 / processors if processors else 1.0,
        )

    # Subtree total work (column + all descendants), children first
    # (child index < parent index in elimination order).
    subtree = ops.copy()
    for j in range(n):
        p = parent[j]
        if p >= 0:
            subtree[p] += subtree[j]

    # Cut the forest: walk down from the roots, splitting the largest
    # remaining subtree until we have ≥ 4p pieces (or pieces stop being
    # divisible).  Columns removed from pieces form the 'top' set.
    children: list[list[int]] = [[] for _ in range(n)]
    roots = []
    for j in range(n):
        p = parent[j]
        if p >= 0:
            children[p].append(j)
        else:
            roots.append(j)

    import heapq

    heap = [(-int(subtree[r]), r) for r in roots]
    heapq.heapify(heap)
    top_cols: list[int] = []
    target_pieces = 4 * processors
    while heap and len(heap) < target_pieces:
        neg, j = heapq.heappop(heap)
        if not children[j]:
            heapq.heappush(heap, (neg, j))
            break  # largest piece is a single column; no further split
        top_cols.append(j)
        for c in children[j]:
            heapq.heappush(heap, (-int(subtree[c]), c))

    pieces = [-neg for neg, _ in heap]

    # Subtree phase: LPT list scheduling of pieces onto processors.
    loads = np.zeros(processors, dtype=np.int64)
    for work in sorted(pieces, reverse=True):
        loads[int(np.argmin(loads))] += work
    subtree_time = int(loads.max(initial=0))

    # Top phase: subtree-to-subcube mapping.  The whole machine works on
    # the root separator columns; at every branching of the (top part of
    # the) elimination forest the processor group splits among the
    # branches.  A column mapped onto q processors runs in
    # ops / min(q, width) — dense-front parallelism is bounded by the
    # front's own width.  The phase time is the critical path under that
    # mapping, floored by work conservation (q processors cannot beat
    # work/q).
    top_set = set(top_cols)
    children_top: dict[int, list[int]] = {j: [] for j in top_cols}
    top_roots = []
    for j in top_cols:
        p = parent[j]
        if p in top_set:
            children_top[p].append(j)
        else:
            top_roots.append(j)

    group = {}
    share = max(1, processors // max(1, len(top_roots)))
    stack = [(r, share) for r in top_roots]
    while stack:
        j, q = stack.pop()
        group[j] = q
        kids = children_top[j]
        if not kids:
            continue
        q_child = max(1, q // len(kids)) if len(kids) > 1 else q
        for c in kids:
            stack.append((c, q_child))

    def col_time(j):
        width = int(counts[j]) + 1
        return int(np.ceil(ops[j] / min(group[j], width)))

    path = {j: col_time(j) for j in top_cols}
    for j in sorted(top_cols):
        p = parent[j]
        if p in top_set and path[j] + col_time(p) > path.get(p, 0):
            path[p] = path[j] + col_time(p)
    top_cp = max(path.values(), default=0)
    top_ops = int(sum(int(ops[j]) for j in top_cols))
    top_time = max(top_cp, -(-top_ops // processors))

    parallel_time = max(1, subtree_time + top_time, -(-serial // processors))
    speedup = serial / parallel_time
    return ParallelFactorStats(
        processors=processors,
        serial_ops=serial,
        parallel_time=parallel_time,
        subtree_time=subtree_time,
        top_time=top_time,
        speedup=speedup,
        efficiency=speedup / processors,
    )
