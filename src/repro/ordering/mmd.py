"""Multiple minimum degree (MMD) ordering — Liu's algorithm.

The paper's serial baseline ([27], "the most widely used variant of minimum
degree due to its very fast runtime").  This is a faithful quotient-graph
implementation with the three devices that define MMD:

* **quotient graph** (George & Liu): eliminated vertices become *elements*;
  a variable's reachable set is its variable neighbours plus the variables
  of its adjacent elements.  Elements adjacent to a newly eliminated
  variable are absorbed into the new element, so storage never exceeds the
  original graph's.
* **multiple elimination**: in each round, an independent set of variables
  whose degree is within ``delta`` of the minimum is eliminated before any
  degree is recomputed — degree updates are the expensive step, and this
  batches them.
* **supervariables** (indistinguishable nodes): variables with identical
  closed reachable sets are merged and eliminated together; detected after
  each round by hashing ``(adjacent elements, closed variable adjacency)``.

External degrees (excluding the supervariable's own weight) are used, as in
Liu's MMD.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.base import Ordering


def mmd_ordering(graph, delta: int = 0) -> Ordering:
    """Multiple-minimum-degree ordering of ``graph``.

    Parameters
    ----------
    delta:
        Multiple-elimination tolerance: a round eliminates independent
        variables with degree ≤ min_degree + ``delta``.  0 is Liu's
        default.

    Returns
    -------
    Ordering
    """
    n = graph.nvtxs
    if n == 0:
        return Ordering.identity(0, "mmd")

    adj_vars: list[set] = [
        set(int(u) for u in graph.neighbors(v)) for v in range(n)
    ]
    adj_elems: list[set] = [set() for _ in range(n)]
    elem_vars: dict[int, set] = {}
    weight = np.ones(n, dtype=np.int64)  # ndarray: fancy-indexed degree sums
    members: list[list[int]] = [[v] for v in range(n)]
    alive = [True] * n  # still a supervariable representative
    eliminated = [False] * n

    degree = [int(weight[list(adj_vars[v])].sum()) if adj_vars[v] else 0
              for v in range(n)]

    # Degree buckets (dict of sets) with a moving minimum pointer.
    buckets: dict[int, set] = {}
    for v in range(n):
        buckets.setdefault(degree[v], set()).add(v)

    def bucket_move(v, old_d, new_d):
        if old_d == new_d:
            return
        b = buckets.get(old_d)
        if b is not None:
            b.discard(v)
            if not b:
                del buckets[old_d]
        buckets.setdefault(new_d, set()).add(v)

    def reach(v):
        # Invariants keep adj_vars/elem_vars free of eliminated and
        # merged-away ids, so the union is the live reachable set directly.
        r = set(adj_vars[v])
        for e in adj_elems[v]:
            r |= elem_vars[e]
        r.discard(v)
        return r

    order: list[int] = []
    remaining = n

    while remaining > 0:
        min_d = min(buckets)
        threshold = min_d + delta
        # Gather this round's candidates in ascending degree.
        candidates = []
        for d in sorted(buckets):
            if d > threshold:
                break
            candidates.extend(sorted(buckets[d]))

        touched: set = set()
        round_eliminated = []
        for v in candidates:
            if eliminated[v] or not alive[v] or v in touched:
                continue
            rv = reach(v)
            # --- eliminate v: it becomes element v --------------------
            absorbed = list(adj_elems[v])
            elem_vars[v] = rv
            for e in absorbed:
                elem_vars.pop(e, None)
            for u in rv:
                adj_vars[u].discard(v)
                adj_vars[u] -= rv  # edges inside the element are redundant
                adj_elems[u] -= set(absorbed)
                adj_elems[u].add(v)
            eliminated[v] = True
            b = buckets.get(degree[v])
            if b is not None:
                b.discard(v)
                if not b:
                    del buckets[degree[v]]
            order.append(v)
            round_eliminated.append(v)
            remaining -= int(weight[v])
            touched |= rv

        # --- batched degree update + supervariable detection ----------
        sig: dict = {}
        for u in sorted(touched):
            if eliminated[u] or not alive[u]:
                continue
            key = (
                frozenset(adj_elems[u]),
                frozenset(adj_vars[u] | {u}),
            )
            other = sig.get(key)
            if other is not None:
                # u is indistinguishable from `other`: merge u into it.  u
                # was external to `other` and is now internal, so `other`'s
                # external degree drops by u's weight.
                bucket_move(other, degree[other], degree[other] - weight[u])
                degree[other] -= weight[u]
                weight[other] += weight[u]
                members[other].extend(members[u])
                alive[u] = False
                b = buckets.get(degree[u])
                if b is not None:
                    b.discard(u)
                    if not b:
                        del buckets[degree[u]]
                for w in adj_vars[u]:
                    adj_vars[w].discard(u)
                for e in adj_elems[u]:
                    if e in elem_vars:
                        elem_vars[e].discard(u)
                adj_vars[u] = set()
                adj_elems[u] = set()
                continue
            sig[key] = u
            r = reach(u)
            new_d = int(weight[list(r)].sum()) if r else 0
            bucket_move(u, degree[u], new_d)
            degree[u] = new_d

    perm = np.fromiter(
        (orig for v in order for orig in members[v]), dtype=np.int64, count=n
    )
    ordering = Ordering.from_perm(perm, "mmd")
    ordering.meta["rounds"] = None
    return ordering


def minimum_degree_ordering(graph) -> Ordering:
    """Plain (single-elimination) minimum degree — MMD with no batching.

    Provided for the ablation benches; identical code path with
    ``delta = 0`` still batches independent same-degree nodes, so this
    wrapper exists mainly to document intent at call sites.
    """
    return mmd_ordering(graph, delta=0)
