"""Greedy vertex-separator refinement.

The minimum-vertex-cover construction (§2 of the paper) gives the smallest
separator obtainable *from a fixed edge separator* — but a different,
smaller vertex separator may exist nearby.  The released METIS therefore
refines separators directly with a node-based FM; this module implements
the greedy (monotone) variant:

* the graph is 3-way labelled: side 0, side 1, separator (2), with no
  edge joining side 0 to side 1 (the invariant, asserted in tests);
* moving separator vertex ``s`` into side ``a`` forces every neighbour of
  ``s`` on the other side into the separator, so the separator weight
  changes by ``Σ vwgt(pulled) − vwgt(s)``;
* passes sweep the separator in random order, applying moves that shrink
  the separator (or keep it equal while improving balance), until a sweep
  makes no move.

Each accepted move strictly improves ``(separator weight, imbalance)``
lexicographically, so termination is immediate and the invariant is
maintained by construction.  On mesh separators this typically shaves
5–15 % off the cover separator, which compounds over the dissection
levels into a measurable opcount win (see the ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

SIDE_A = 0
SIDE_B = 1
SEPARATOR = 2


def separator_weight(graph, where3) -> int:
    """Total vertex weight of the separator."""
    return int(graph.vwgt[np.asarray(where3) == SEPARATOR].sum())


def is_valid_separator_labelling(graph, where3) -> bool:
    """No edge may join side 0 to side 1."""
    where3 = np.asarray(where3)
    src = graph.edge_sources()
    a = where3[src]
    b = where3[graph.adjncy]
    bad = ((a == SIDE_A) & (b == SIDE_B)) | ((a == SIDE_B) & (b == SIDE_A))
    return not bool(bad.any())


def refine_vertex_separator(
    graph,
    where3,
    rng=None,
    *,
    maxpwgt=None,
    max_passes: int = 6,
) -> np.ndarray:
    """Greedily shrink a vertex separator in place; returns ``where3``.

    Parameters
    ----------
    where3:
        int array labelling each vertex 0 (side A), 1 (side B) or
        2 (separator); mutated in place.
    maxpwgt:
        Optional per-side weight caps ``(cap_a, cap_b)``; moves that would
        push a side over its cap are taken only if they also reduce the
        larger side (i.e. improve balance).
    max_passes:
        Sweep cap; each sweep is monotone so this is a safety bound.
    """
    rng = as_generator(rng)
    where3 = np.asarray(where3)
    xadj, adjncy, vwgt = graph.xadj, graph.adjncy, graph.vwgt
    n = graph.nvtxs
    if maxpwgt is None:
        maxpwgt = (np.iinfo(np.int64).max, np.iinfo(np.int64).max)

    pwgts = [
        int(vwgt[where3 == SIDE_A].sum()),
        int(vwgt[where3 == SIDE_B].sum()),
    ]

    for _ in range(max_passes):
        sep = np.flatnonzero(where3 == SEPARATOR)
        if len(sep) == 0:
            break
        moved = 0
        for s in rng.permutation(sep):
            s = int(s)
            if where3[s] != SEPARATOR:
                continue  # pulled into the separator earlier this sweep? no — only grows; guard anyway
            nbrs = adjncy[xadj[s] : xadj[s + 1]]
            labels = where3[nbrs]
            w_s = int(vwgt[s])
            best = None  # (delta_sep, -balance_gain, side, pulled)
            for side, other in ((SIDE_A, SIDE_B), (SIDE_B, SIDE_A)):
                pulled = nbrs[labels == other]
                delta = int(vwgt[pulled].sum()) - w_s
                if delta > 0:
                    continue  # separator would grow
                new_side = pwgts[side] + w_s
                new_other = pwgts[other] - int(vwgt[pulled].sum())
                if new_side > maxpwgt[side] and new_side >= pwgts[other]:
                    continue  # violates cap without improving balance
                if delta == 0:
                    # Pure swap: accept only if balance improves.
                    if max(new_side, new_other) >= max(pwgts):
                        continue
                key = (delta, max(new_side, new_other))
                if best is None or key < best[0]:
                    best = (key, side, other, pulled)
            if best is None:
                continue
            _, side, other, pulled = best
            where3[s] = side
            pwgts[side] += w_s
            if len(pulled):
                where3[pulled] = SEPARATOR
                pwgts[other] -= int(vwgt[pulled].sum())
            moved += 1
        if moved == 0:
            break
    return where3


def build_labelling(graph, where, separator) -> np.ndarray:
    """3-way labelling from a bisection ``where`` and a separator list."""
    where3 = np.asarray(where, dtype=np.int8).copy()
    where3[np.asarray(separator, dtype=np.int64)] = SEPARATOR
    return where3
