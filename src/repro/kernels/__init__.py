"""Kernel backend registry for the three hot phases (docs/PERFORMANCE.md).

The multilevel pipeline spends essentially all of its time in three
kernels — matching proposal rounds (CTime), FM gain maintenance (RTime)
and graph contraction (CTime) — and the engineering follow-ups to the
source paper (arXiv:1012.0006, arXiv:0910.2004) show that these constant
factors are where multilevel partitioners win or lose.  This package
generalises PR 5's one-off ``matching_impl`` switch into a registry of
named **backends**, each providing some subset of the phase kernels:

``loop``
    The bit-exact reference implementations in :mod:`repro.core` /
    :mod:`repro.graph`.  Always available, always the default, and the
    only backend whose output reproduces the paper's published runs
    bit-for-bit.
``vectorized``
    Whole-array NumPy kernels: the batched proposal-round matching
    (formerly ``repro.perf.matching_vec``) and a fused-sort-key
    contraction.  Same validity oracles; matching makes different
    (still deterministic) tie-breaks, contraction is bit-identical.
``numba``
    Optional ``@njit`` kernels for the FM inner loop (bucket gain
    arrays), matching, contraction and the k-way boundary sweep.
    Requires the ``numba`` package; detected by an import probe and
    never imported at module top level (lint rule RP017).

Selection is resolved **once per driver entry** by
:func:`resolve_kernels`, with precedence ``options.kernels`` >
``REPRO_KERNELS`` > the legacy ``options.matching_impl`` (matching phase
only) > ``loop``.  A backend that is unavailable — or that has no kernel
for a phase — falls back along its declared chain
(``numba`` → ``vectorized`` → ``loop``) *per phase*, and every fallback
decision is recorded on the returned :class:`KernelSelection` so it can
surface in ``repro.obs`` spans and in ``MultilevelResult.kernels``.

Backend modules themselves (``repro.kernels.vec_backend``,
``repro.kernels.numba_backend``) are implementation detail: the rest of
``src/repro`` must reach them through this registry (enforced by RP017).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.kernels.vec_backend import (  # re-exported: the blessed entry
    UNMATCHED,
    segment_max,
    vectorized_matching,
)
from repro.utils.errors import ConfigurationError

__all__ = [
    "PHASES",
    "BACKENDS",
    "ENV_VAR",
    "KernelChoice",
    "KernelSelection",
    "resolve_kernels",
    "matching_kernel_for",
    "kway_kernel",
    "numba_available",
    "register_backend",
    "segment_max",
    "vectorized_matching",
    "UNMATCHED",
]

#: The hot phases the registry dispatches.
PHASES = ("matching", "fm", "contract")

#: Environment knob consulted when ``options.kernels`` is unset.
ENV_VAR = "REPRO_KERNELS"


@dataclass(frozen=True)
class _Backend:
    """One registered backend: probe, fallback target, phase loaders."""

    name: str
    fallback: str | None
    probe: object  #: () -> bool; availability check, cheap after first call
    loaders: dict  #: phase -> () -> kernel callable (lazy imports live here)


_BACKENDS: dict[str, _Backend] = {}
_KERNEL_CACHE: dict[tuple[str, str], object] = {}


def register_backend(name, loaders, *, probe=None, fallback="loop") -> None:
    """Register (or replace) a backend.

    Parameters
    ----------
    name:
        Backend name as accepted by ``--kernels`` / ``REPRO_KERNELS``.
    loaders:
        ``phase -> zero-arg loader`` returning the kernel callable; the
        loader runs lazily so optional dependencies are only imported
        when the backend is actually selected.  Kernel signatures:
        ``matching(graph, scheme, rng, cewgt)``,
        ``fm(graph, where, pwgts, maxpwgt, cut, **fm_pass_kwargs)``,
        ``contract(graph, cmap, ncoarse)``.  A backend may additionally
        provide a ``"kway"`` loader (boundary-sweep kernel) consulted by
        :func:`kway_kernel`.
    probe:
        Optional availability check; ``None`` means always available.
    fallback:
        Backend to try next when this one is unavailable or lacks a
        phase kernel (``None`` only for the terminal ``loop`` backend).
    """
    _BACKENDS[name] = _Backend(
        name=name,
        fallback=fallback,
        probe=probe if probe is not None else (lambda: True),
        loaders=dict(loaders),
    )
    for key in list(_KERNEL_CACHE):
        if key[0] == name:
            del _KERNEL_CACHE[key]


def numba_available() -> bool:
    """Import probe for the optional ``numba`` dependency (cached)."""
    from repro.kernels import numba_backend

    return numba_backend.available()


@dataclass(frozen=True)
class KernelChoice:
    """The resolved backend for one phase.

    ``reason`` is ``None`` when the requested backend was selected
    directly, otherwise a human-readable chain of the fallback decisions
    (e.g. ``"numba unavailable (no module named 'numba')"``).
    """

    phase: str
    requested: str
    selected: str
    reason: str | None = None


@dataclass(frozen=True)
class KernelSelection:
    """Per-phase backend choices for one driver entry.

    Resolved once by :func:`resolve_kernels` and threaded down through
    the phase drivers, so the hot loops never re-read environment
    variables or re-probe imports.
    """

    requested: str
    choices: tuple

    def _choice(self, phase: str) -> KernelChoice:
        for choice in self.choices:
            if choice.phase == phase:
                return choice
        raise ConfigurationError(f"unknown kernel phase {phase!r}")

    def backend(self, phase: str) -> str:
        """Name of the backend selected for ``phase``."""
        return self._choice(phase).selected

    def kernel(self, phase: str):
        """The kernel callable selected for ``phase`` (loaded lazily)."""
        choice = self._choice(phase)
        return _load(choice.selected, phase)

    def as_dict(self) -> dict:
        """JSON-able summary for spans and ``MultilevelResult.kernels``.

        ``{"requested": ..., "<phase>": "<backend>", ...}`` plus a
        ``"fallbacks"`` map (phase → reason) when any phase fell back.
        """
        out = {"requested": self.requested}
        fallbacks = {}
        for choice in self.choices:
            out[choice.phase] = choice.selected
            if choice.reason:
                fallbacks[choice.phase] = choice.reason
        if fallbacks:
            out["fallbacks"] = fallbacks
        return out


def _load(backend: str, phase: str):
    key = (backend, phase)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = _BACKENDS[backend].loaders[phase]()
        _KERNEL_CACHE[key] = kernel
    return kernel


def _select(phase: str, requested: str) -> KernelChoice:
    """Walk the fallback chain until a usable backend is found."""
    name = requested
    reasons: list[str] = []
    while name is not None:
        backend = _BACKENDS.get(name)
        if backend is None:
            raise ConfigurationError(
                f"unknown kernel backend {name!r}; expected one of "
                f"{', '.join(sorted(_BACKENDS))}"
            )
        if not backend.probe():
            reasons.append(f"{name} unavailable")
            name = backend.fallback
            continue
        if phase not in backend.loaders:
            reasons.append(f"{name} has no {phase} kernel")
            name = backend.fallback
            continue
        return KernelChoice(
            phase=phase,
            requested=requested,
            selected=name,
            reason="; ".join(reasons) or None,
        )
    raise ConfigurationError(
        f"no backend provides a {phase!r} kernel (requested {requested!r})"
    )


def resolve_kernels(options=None, env=None) -> KernelSelection:
    """Resolve the per-phase backend selection for one driver entry.

    Precedence: ``options.kernels`` > the ``REPRO_KERNELS`` environment
    variable > the legacy ``options.matching_impl`` switch (which names
    a backend for the *matching phase only*; ``fm`` and ``contract``
    stay on ``loop``) > ``loop`` everywhere.
    """
    environ = env if env is not None else os.environ
    requested = None
    if options is not None and getattr(options, "kernels", None):
        requested = options.kernels
    else:
        requested = environ.get(ENV_VAR) or None
    if requested is not None:
        if requested not in _BACKENDS:
            raise ConfigurationError(
                f"unknown kernel backend {requested!r}; expected one of "
                f"{', '.join(sorted(_BACKENDS))}"
            )
        per_phase = {phase: requested for phase in PHASES}
        headline = requested
    else:
        impl = getattr(options, "matching_impl", "loop") if options else "loop"
        per_phase = {"matching": impl, "fm": "loop", "contract": "loop"}
        headline = impl
    return KernelSelection(
        requested=headline,
        choices=tuple(_select(phase, per_phase[phase]) for phase in PHASES),
    )


def matching_kernel_for(impl: str):
    """Matching kernel for backend ``impl``, with transparent fallback.

    The back-compat entry used by
    :func:`repro.core.matching.compute_matching`: validates the name,
    probes availability and walks the fallback chain exactly like a full
    :func:`resolve_kernels` would for the matching phase.
    """
    choice = _select("matching", impl)
    return _load(choice.selected, "matching")


def kway_kernel(selection: KernelSelection):
    """Boundary-sweep kernel for the selected ``fm`` backend, or ``None``.

    ``None`` means the caller should run its reference Python sweep (the
    ``loop`` implementation lives inline in
    :mod:`repro.core.kway_refine`).
    """
    backend = _BACKENDS[selection.backend("fm")]
    if "kway" not in backend.loaders:
        return None
    return _load(backend.name, "kway")


# --------------------------------------------------------------------------
# Built-in backends.  Loaders import lazily: the reference modules are part
# of the normal import graph anyway, but numba_backend must only be touched
# once its probe has passed (RP017).

def _load_loop_matching():
    from repro.core.matching import loop_matching

    return loop_matching


def _load_loop_fm():
    from repro.core.refine import fm_pass

    return fm_pass


def _load_loop_contract():
    from repro.graph.contract import contract

    return contract


def _load_vec_matching():
    return vectorized_matching


def _load_vec_contract():
    from repro.kernels.vec_backend import contract_vectorized

    return contract_vectorized


def _load_numba_matching():
    from repro.kernels import numba_backend

    return numba_backend.matching_numba


def _load_numba_fm():
    from repro.kernels import numba_backend

    return numba_backend.fm_pass_numba


def _load_numba_contract():
    from repro.kernels import numba_backend

    return numba_backend.contract_numba


def _load_numba_kway():
    from repro.kernels import numba_backend

    return numba_backend.kway_sweep_numba


register_backend(
    "loop",
    {
        "matching": _load_loop_matching,
        "fm": _load_loop_fm,
        "contract": _load_loop_contract,
    },
    fallback=None,
)

register_backend(
    "vectorized",
    {
        "matching": _load_vec_matching,
        "contract": _load_vec_contract,
    },
    fallback="loop",
)

register_backend(
    "numba",
    {
        "matching": _load_numba_matching,
        "fm": _load_numba_fm,
        "contract": _load_numba_contract,
        "kway": _load_numba_kway,
    },
    probe=numba_available,
    fallback="vectorized",
)

#: The built-in backend names, in fallback order (extensions may register
#: more at runtime via :func:`register_backend`).
BACKENDS = ("loop", "vectorized", "numba")
