"""The optional ``numba`` kernel backend: ``@njit`` phase kernels.

Reached only through the :mod:`repro.kernels` registry (lint rule RP017),
and **never** imports numba at module top level: :func:`available` is the
capability probe, and each kernel function is compiled on first use by
:func:`_kernel`.  When numba is absent this module still imports cleanly —
the registry's fallback chain (``numba`` → ``vectorized`` → ``loop``)
simply never loads the wrappers — and the undecorated kernel functions
remain callable as plain Python, which is how the equivalence tests pin
their semantics on machines without numba.

Four kernels:

* :func:`fm_pass_numba` — the FM inner loop with the classical
  Fiduccia–Mattheyses bucket gain structure flattened into arrays
  (doubly-linked bucket lists via ``head``/``nxt``/``prv``, a max-gain
  pointer per side), maintained *eagerly* so pops are always current.
  Same move semantics as the reference :func:`repro.core.refine.fm_pass`
  (side preference, empty-side and balance gates, early exit, suffix
  undo); in-bucket tie-breaking is LIFO rather than the heap's
  insertion-order, so cuts may differ from ``loop`` — both orders are
  valid FM and the sanitizer/equivalence oracles hold for each.
* :func:`matching_numba` — the §3.1 matching loop with RNG draws hoisted
  out of the jitted region (a visit permutation, plus pre-drawn uniforms
  for RM): HEM/LEM/HCM replicate the loop kernel's visitation order and
  first-index tie-breaks exactly.
* :func:`contract_numba` — dense-marker contraction: O(n + m) bucketing
  of fine edges into coarse rows with per-row insertion sort, producing
  output bit-identical to :func:`repro.graph.contract.contract`.
* :func:`kway_sweep_numba` — one boundary sweep of the greedy k-way
  refiner, replicating the reference Python sweep move-for-move (the
  candidate order is drawn by the caller).

The first call of each kernel pays a JIT compilation (cached on disk via
``cache=True``); benchmarks warm the kernels up before timing.
"""

from __future__ import annotations

import numpy as np

from repro.core.gains import external_internal_degrees
from repro.core.options import MatchingScheme
from repro.graph.contract import propagate_coords
from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE
from repro.graph.partition import exact_weight_bincount
from repro.utils.rng import as_generator

__all__ = [
    "available",
    "fm_pass_numba",
    "matching_numba",
    "contract_numba",
    "kway_sweep_numba",
]

_NUMBA_OK: bool | None = None
_COMPILED: dict = {}


def available() -> bool:
    """Capability probe: can numba be imported?  Cached after first call."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401  (probe only; lazy by design, RP017)

            _NUMBA_OK = True
        except ImportError:
            _NUMBA_OK = False
    return _NUMBA_OK


def _kernel(fn):
    """The jitted version of kernel function ``fn``, compiling on first use.

    Falls back to the undecorated Python function when numba is absent, so
    the wrappers below stay callable (slowly) everywhere — the registry's
    probe keeps this backend from being *selected* without numba, but the
    equivalence tests call the wrappers directly on any machine.
    """
    compiled = _COMPILED.get(fn.__name__)
    if compiled is None:
        if available():
            from numba import njit

            compiled = njit(cache=True)(fn)
        else:
            compiled = fn
        _COMPILED[fn.__name__] = compiled
    return compiled


# --------------------------------------------------------------------------
# FM pass.

def _fm_kernel(
    xadj,
    adjncy,
    adjwgt,
    vwgt,
    where,
    pwgts,
    max0,
    max1,
    cut,
    ed,
    id_,
    boundary_only,
    early_exit,
):
    """One FM pass over ``where`` with eager bucket gain maintenance.

    Mutates ``where``/``pwgts``/``ed``/``id_`` in place through *all*
    moves (the caller performs the best-prefix undo, mirroring the
    reference kernel so the sanitizer can validate the final degree
    arrays first).  Returns ``(moved, nmoved, best_prefix, tried,
    rejected, start_over, best_over, run_cut, best_cut)``.
    """
    n = xadj.shape[0] - 1

    # |gain| is bounded by the maximum weighted degree (ed+id is invariant
    # under moves), which sizes the bucket array once for the whole pass.
    bound = np.int64(0)
    for v in range(n):
        d = ed[v] + id_[v]
        if d > bound:
            bound = d
    nb = 2 * bound + 1

    # Bucket lists flattened into arrays: head[side*nb + gain+bound] is the
    # first vertex of that bucket, nxt/prv the in-bucket links, gain_of the
    # gain a table member is filed under, maxptr the per-side top bucket.
    head = np.full(2 * nb, -1, np.int64)
    nxt = np.full(n, -1, np.int64)
    prv = np.full(n, -1, np.int64)
    gain_of = np.zeros(n, np.int64)
    intab = np.zeros(n, np.uint8)
    locked = np.zeros(n, np.uint8)
    maxptr = np.full(2, -1, np.int64)

    for v in range(n):
        if boundary_only and ed[v] <= 0:
            continue
        g = ed[v] - id_[v]
        side = where[v]
        idx = side * nb + g + bound
        h = head[idx]
        nxt[v] = h
        prv[v] = -1
        if h != -1:
            prv[h] = v
        head[idx] = v
        gain_of[v] = g
        intab[v] = 1
        if g + bound > maxptr[side]:
            maxptr[side] = g + bound

    moved = np.empty(n, np.int64)
    nmoved = 0
    best_prefix = 0
    tried = 0
    rejected = 0

    start_over = np.int64(0)
    if pwgts[0] > max0:
        start_over += pwgts[0] - max0
    if pwgts[1] > max1:
        start_over += pwgts[1] - max1
    best_over = start_over
    best_cut = cut
    since_best = 0

    while since_best < early_exit:
        # Settle each side's max-gain pointer past drained buckets.
        for side in range(2):
            mp = maxptr[side]
            while mp >= 0 and head[side * nb + mp] == -1:
                mp -= 1
            maxptr[side] = mp
        if maxptr[0] < 0 and maxptr[1] < 0:
            break
        # Prefer the higher gain; break ties toward the heavier side so
        # the pass drifts toward balance (same rule as the reference).
        if maxptr[0] < 0:
            side = 1
        elif maxptr[1] < 0:
            side = 0
        elif maxptr[0] > maxptr[1]:
            side = 0
        elif maxptr[1] > maxptr[0]:
            side = 1
        elif pwgts[0] >= pwgts[1]:
            side = 0
        else:
            side = 1
        idx = side * nb + maxptr[side]
        v = head[idx]
        gain = maxptr[side] - bound
        h = nxt[v]
        head[idx] = h
        if h != -1:
            prv[h] = -1
        intab[v] = 0

        other = 1 - side
        w_v = vwgt[v]
        if side == 0:
            max_side = max0
            max_other = max1
        else:
            max_side = max1
            max_other = max0
        if pwgts[side] == w_v:
            locked[v] = 1  # moving v would empty its side
            rejected += 1
            continue
        dest_after = pwgts[other] + w_v
        if dest_after > max_other:
            over_before = np.int64(0)
            if pwgts[0] > max0:
                over_before += pwgts[0] - max0
            if pwgts[1] > max1:
                over_before += pwgts[1] - max1
            over_after = dest_after - max_other
            src_after = pwgts[side] - w_v
            if src_after > max_side:
                over_after += src_after - max_side
            if over_after >= over_before:
                locked[v] = 1  # unusable this pass
                rejected += 1
                continue

        tried += 1
        where[v] = other
        pwgts[side] -= w_v
        pwgts[other] += w_v
        cut -= gain
        t = ed[v]
        ed[v] = id_[v]
        id_[v] = t
        locked[v] = 1
        moved[nmoved] = v
        nmoved += 1

        for j in range(xadj[v], xadj[v + 1]):
            u = adjncy[j]
            w = adjwgt[j]
            if where[u] == other:
                delta = -w
            else:
                delta = w
            was_interior = ed[u] == 0
            ed[u] += delta
            id_[u] -= delta
            if locked[u] == 1:
                continue
            g = ed[u] - id_[u]
            su = where[u]
            if intab[u] == 1:
                oidx = su * nb + gain_of[u] + bound
                pn = nxt[u]
                pp = prv[u]
                if pp == -1:
                    head[oidx] = pn
                else:
                    nxt[pp] = pn
                if pn != -1:
                    prv[pn] = pp
            elif boundary_only and not (was_interior and delta > 0):
                continue  # not newly boundary; stays out of the table
            nidx = su * nb + g + bound
            h = head[nidx]
            nxt[u] = h
            prv[u] = -1
            if h != -1:
                prv[h] = u
            head[nidx] = u
            gain_of[u] = g
            intab[u] = 1
            if g + bound > maxptr[su]:
                maxptr[su] = g + bound

        over = np.int64(0)
        if pwgts[0] > max0:
            over += pwgts[0] - max0
        if pwgts[1] > max1:
            over += pwgts[1] - max1
        if over < best_over or (over == best_over and cut < best_cut):
            best_over = over
            best_cut = cut
            best_prefix = nmoved
            since_best = 0
        else:
            since_best += 1

    return (
        moved,
        nmoved,
        best_prefix,
        tried,
        rejected,
        start_over,
        best_over,
        cut,
        best_cut,
    )


def fm_pass_numba(
    graph,
    where,
    pwgts,
    maxpwgt,
    cut,
    *,
    boundary_only,
    early_exit,
    ed=None,
    id_=None,
    stats=None,
    eager=False,
    gain_table="heap",
    san=None,
    span=None,
):
    """Jitted FM pass; drop-in for :func:`repro.core.refine.fm_pass`.

    ``eager`` and ``gain_table`` are accepted for signature compatibility
    and ignored: the bucket-array structure is inherently eager and is
    the only gain table the jitted kernel implements.
    """
    if ed is None or id_ is None:
        ed, id_ = external_internal_degrees(graph, where)
    boundary0 = int((ed > 0).sum()) if span else 0
    start_cut = int(cut)

    kern = _kernel(_fm_kernel)
    (
        moved,
        nmoved,
        best_prefix,
        tried,
        rejected,
        start_over,
        best_over,
        run_cut,
        best_cut,
    ) = kern(
        graph.xadj,
        graph.adjncy,
        graph.adjwgt,
        graph.vwgt,
        np.asarray(where),
        pwgts,
        int(maxpwgt[0]),
        int(maxpwgt[1]),
        int(cut),
        ed,
        id_,
        bool(boundary_only),
        int(early_exit),
    )

    # All moves are applied and the degree arrays are final: validate the
    # incremental bookkeeping before the undo (mirrors the reference).
    if san:
        san.check_degrees(graph, where, ed, id_, int(run_cut), phase="refine")

    vwgt = graph.vwgt
    for v in moved[best_prefix:nmoved][::-1].tolist():
        side = int(where[v])
        other = 1 - side
        w_v = int(vwgt[v])
        where[v] = other
        pwgts[side] -= w_v
        pwgts[other] += w_v

    improvement = (int(start_over) - int(best_over)) + (start_cut - int(best_cut))

    if stats is not None:
        stats.moves_tried += int(tried)
        stats.moves_rejected += int(rejected)
        stats.moves_kept += int(best_prefix)
        stats.improvement += improvement

    if span:
        span.event(
            "refine.pass",
            moves=int(tried),
            rejected=int(rejected),
            kept=int(best_prefix),
            undo=int(nmoved) - int(best_prefix),
            boundary=boundary0,
            improvement=improvement,
            cut=int(best_cut),
            table="numba",
        )

    return int(best_cut), improvement


# --------------------------------------------------------------------------
# Matching.

_SCHEME_CODES = {
    MatchingScheme.RM: 0,
    MatchingScheme.HEM: 1,
    MatchingScheme.LEM: 2,
    MatchingScheme.HCM: 3,
}


def _match_kernel(xadj, adjncy, adjwgt, vwgt, cewgt, perm, rand, code):
    """§3.1 matching loop over a pre-drawn visit permutation.

    ``rand`` holds one pre-drawn uniform per vertex (consumed by RM only;
    empty for the deterministic-pick schemes).  HEM/LEM/HCM pick by a
    strict-inequality scan, which reproduces the reference kernels'
    ``argmax``/``argmin`` first-index tie-breaking.
    """
    n = perm.shape[0]
    match = np.full(n, -1, np.int64)
    for i in range(n):
        u = perm[i]
        if match[u] != -1:
            continue
        s = xadj[u]
        e = xadj[u + 1]
        best = np.int64(-1)
        if code == 0:  # RM: uniformly random free neighbour
            nfree = 0
            for j in range(s, e):
                if match[adjncy[j]] == -1:
                    nfree += 1
            if nfree > 0:
                want = np.int64(rand[u] * nfree)
                if want >= nfree:
                    want = nfree - 1
                c = 0
                for j in range(s, e):
                    v = adjncy[j]
                    if match[v] == -1:
                        if c == want:
                            best = v
                            break
                        c += 1
        elif code == 1:  # HEM: heaviest edge, first index on ties
            bw = np.int64(-1)
            for j in range(s, e):
                v = adjncy[j]
                if match[v] == -1 and adjwgt[j] > bw:
                    bw = adjwgt[j]
                    best = v
        elif code == 2:  # LEM: lightest edge, first index on ties
            bw = np.int64(0)
            first = True
            for j in range(s, e):
                v = adjncy[j]
                if match[v] == -1 and (first or adjwgt[j] < bw):
                    bw = adjwgt[j]
                    best = v
                    first = False
        else:  # HCM: densest merged multinode, first index on ties
            bd = -1.0
            for j in range(s, e):
                v = adjncy[j]
                if match[v] != -1:
                    continue
                size = vwgt[u] + vwgt[v]
                denom = size * (size - 1)
                if denom > 0:
                    d = 2.0 * (cewgt[u] + cewgt[v] + adjwgt[j]) / denom
                else:
                    d = 0.0
                if d > bd:
                    bd = d
                    best = v
        if best == -1:
            match[u] = u  # stays unmatched; copied to the coarse graph
        else:
            match[u] = best
            match[best] = u
    return match


def matching_numba(graph, scheme, rng=None, cewgt=None) -> np.ndarray:
    """Jitted §3.1 matching; involution form like the reference kernels.

    RNG draws happen here, outside the jitted region, so the kernel is
    deterministic for a given generator: one visit permutation always,
    plus one uniform per vertex for RM's neighbour choice.
    """
    scheme = MatchingScheme(scheme)
    rng = as_generator(rng)
    n = graph.nvtxs
    perm = rng.permutation(n)
    if scheme is MatchingScheme.RM:
        rand = rng.random(n)
    else:
        rand = np.empty(0, dtype=np.float64)
    if cewgt is None:
        cewgt = np.zeros(n, dtype=np.int64)
    kern = _kernel(_match_kernel)
    return kern(
        graph.xadj,
        graph.adjncy,
        graph.adjwgt,
        graph.vwgt,
        np.asarray(cewgt, dtype=np.int64),
        perm,
        rand,
        _SCHEME_CODES[scheme],
    )


# --------------------------------------------------------------------------
# Contraction.

def _contract_kernel(xadj, adjncy, adjwgt, cmap, ncoarse):
    """Dense-marker contraction: O(n + m) bucketing plus per-row sort.

    Groups fine vertices by coarse id (counting sort), accumulates each
    coarse row with a marker array (``mark[c]`` = position of coarse
    neighbour ``c`` in the output, valid while ≥ the row's start), then
    insertion-sorts each row by neighbour id so the output matches the
    sorted-merge reference bit-for-bit.
    """
    n = xadj.shape[0] - 1
    counts = np.zeros(ncoarse + 1, np.int64)
    for v in range(n):
        counts[cmap[v] + 1] += 1
    for c in range(ncoarse):
        counts[c + 1] += counts[c]
    members = np.empty(n, np.int64)
    fill = counts[:ncoarse].copy()
    for v in range(n):
        c = cmap[v]
        members[fill[c]] = v
        fill[c] += 1

    m = adjncy.shape[0]
    mark = np.full(ncoarse, -1, np.int64)
    cxadj = np.zeros(ncoarse + 1, np.int64)
    cadjncy = np.empty(m, np.int64)
    cadjwgt = np.empty(m, np.int64)
    pos = np.int64(0)
    for c in range(ncoarse):
        row_start = pos
        for t in range(counts[c], counts[c + 1]):
            v = members[t]
            for j in range(xadj[v], xadj[v + 1]):
                nc = cmap[adjncy[j]]
                if nc == c:
                    continue  # collapsed intra-multinode edge
                p = mark[nc]
                if p >= row_start:  # already present in this row
                    cadjwgt[p] += adjwgt[j]
                else:
                    mark[nc] = pos
                    cadjncy[pos] = nc
                    cadjwgt[pos] = adjwgt[j]
                    pos += 1
        # Insertion sort the row by coarse neighbour id (rows are short).
        for a in range(row_start + 1, pos):
            key_n = cadjncy[a]
            key_w = cadjwgt[a]
            b = a - 1
            while b >= row_start and cadjncy[b] > key_n:
                cadjncy[b + 1] = cadjncy[b]
                cadjwgt[b + 1] = cadjwgt[b]
                b -= 1
            cadjncy[b + 1] = key_n
            cadjwgt[b + 1] = key_w
        cxadj[c + 1] = pos
    return cxadj, cadjncy[:pos], cadjwgt[:pos]


def contract_numba(graph, cmap, ncoarse) -> CSRGraph:
    """Jitted contraction; bit-identical to the reference ``contract``."""
    cmap = np.asarray(cmap, dtype=np.int64)
    kern = _kernel(_contract_kernel)
    cxadj, cadjncy, cadjwgt = kern(
        graph.xadj, graph.adjncy, graph.adjwgt, cmap, int(ncoarse)
    )
    cvwgt = exact_weight_bincount(
        cmap, graph.vwgt, minlength=ncoarse, total=graph.total_vwgt()
    )
    coarse = CSRGraph(
        cxadj,
        cadjncy.astype(INDEX_DTYPE),
        cadjwgt.astype(WEIGHT_DTYPE),
        cvwgt,
        validate=False,
    )
    propagate_coords(graph, coarse, cmap, ncoarse, cvwgt)
    return coarse


# --------------------------------------------------------------------------
# K-way boundary sweep.

def _kway_sweep_kernel(xadj, adjncy, adjwgt, vwgt, where, pwgts, maxpwgt, k, order):
    """One greedy k-way sweep over ``order``; returns (moved, pass_gain).

    Move-for-move identical to the reference Python sweep in
    :mod:`repro.core.kway_refine` (ascending-part tie scan, lighter
    destination on gain ties, repair rules), so the backends agree
    bit-for-bit given the same candidate order.
    """
    moved = 0
    pass_gain = np.int64(0)
    toward = np.zeros(k, np.int64)
    touched = np.empty(k, np.int64)
    for i in range(order.shape[0]):
        v = order[i]
        my = where[v]
        must_repair = pwgts[my] > maxpwgt
        s = xadj[v]
        e = xadj[v + 1]
        ntouch = 0
        has_other = False
        for j in range(s, e):
            p = where[adjncy[j]]
            if p != my:
                has_other = True
            if toward[p] == 0:  # weights are positive: 0 == untouched
                touched[ntouch] = p
                ntouch += 1
            toward[p] += adjwgt[j]
        if not must_repair and not has_other:
            for t in range(ntouch):
                toward[touched[t]] = 0
            continue  # interior vertex (became interior earlier this pass)
        internal = toward[my]
        w_v = vwgt[v]

        # Destinations: adjacent parts only (ascending id, matching the
        # reference's sorted np.unique scan); under repair pressure every
        # part qualifies.
        best_part = -1
        best_gain = np.int64(0)
        best_pw = np.int64(0)
        for p in range(k):
            if p == my:
                continue
            if not must_repair and toward[p] == 0:
                continue  # not adjacent; only repair may move there
            gain = toward[p] - internal
            fits = pwgts[p] + w_v <= maxpwgt
            repairs = must_repair and pwgts[p] + w_v < pwgts[my]
            if not (fits or repairs):
                continue
            # Maximise gain; ties toward the lighter destination.
            if (
                best_part == -1
                or gain > best_gain
                # both sides int64 by construction (exact integer gains)
                or (gain == best_gain and pwgts[p] < best_pw)  # repro: noqa[RP004]
            ):
                best_part = p
                best_gain = gain
                best_pw = pwgts[p]
        for t in range(ntouch):
            toward[touched[t]] = 0
        if best_part == -1:
            continue
        # Positive-gain moves always; non-positive gains only as balance
        # repair (the greedy refiner never hill-climbs).
        if best_gain <= 0 and not must_repair:
            continue
        where[v] = best_part
        pwgts[my] -= w_v
        pwgts[best_part] += w_v
        pass_gain += best_gain
        moved += 1
    return moved, pass_gain


def kway_sweep_numba(graph, where, pwgts, maxpwgt, k, order):
    """Jitted k-way boundary sweep; returns ``(moved, pass_gain)``."""
    kern = _kernel(_kway_sweep_kernel)
    moved, pass_gain = kern(
        graph.xadj,
        graph.adjncy,
        graph.adjwgt,
        graph.vwgt,
        np.asarray(where),
        pwgts,
        int(maxpwgt),
        int(k),
        np.asarray(order, dtype=np.int64),
    )
    return int(moved), int(pass_gain)
