"""The ``vectorized`` kernel backend: whole-array NumPy kernels.

Reached only through the :mod:`repro.kernels` registry (lint rule RP017).
Two phase kernels live here:

**Matching** — batched proposal rounds.  The reference kernels in
:mod:`repro.core.matching` visit vertices one at a time in a random
order — O(|E|) work but with a Python-level loop whose per-vertex
overhead dominates CTime on large graphs.  :func:`vectorized_matching`
rewrites all four §3.1 schemes as *proposal rounds* made of whole-array
NumPy passes:

1. every vertex that is still free proposes to its best free neighbour,
   where "best" is the scheme's criterion (heaviest edge for HEM, lightest
   for LEM, densest merged multinode for HCM, any free neighbour for RM)
   evaluated by a masked segment-max over the CSR adjacency slices;
2. ties inside a vertex's candidate set are broken by a per-round random
   vertex priority, so each vertex proposes to exactly one neighbour;
3. mutual proposals (``partner[partner[u]] == u``) are accepted and both
   endpoints leave the free set;
4. repeat until no edge joins two free vertices.

Termination is guaranteed: let ``K`` be the maximal primary key among the
round's free-free edges and ``w`` the highest-priority endpoint of any
``K``-edge.  Every free vertex reaching ``w`` through a ``K``-edge has all
its candidates in the ``K`` class (``K`` is the global maximum) and breaks
ties toward the highest-priority target — which is ``w`` — so ``w``'s own
proposal (to some ``K``-neighbour ``x``) is reciprocated and ``(w, x)`` is
matched.  At least one pair therefore lands per round; in practice a round
matches a large constant fraction of the free vertices and the loop
finishes in O(log n) rounds.  On exit no edge joins two free vertices,
which is exactly the maximality oracle, and matched pairs are symmetric by
construction, which is the involution oracle.

The result is deterministic for a given generator but *not* bit-identical
to the loop kernels (the visitation order and the proposal rounds consume
randomness differently); keep the ``loop`` backend when reproducing the
paper's published tables bit-for-bit.

**Contraction** — fused-key bucketing.  The reference
:func:`repro.graph.contract.contract` lexsorts the mapped directed edges
by ``(cu, cv)`` with ``np.lexsort``, which runs one stable argsort per
key.  :func:`contract_vectorized` fuses the pair into the single int64
key ``cu * ncoarse + cv`` (collision-free: both factors are below
``ncoarse`` and ``ncoarse² < 2⁶³`` for any graph that fits in memory) and
sorts once.  The run boundaries — and therefore the merged coarse graph —
are **bit-identical** to the reference kernel: duplicate-edge weights are
summed in int64, where addition order cannot change the result.
"""

from __future__ import annotations

import numpy as np

from repro.core.options import MatchingScheme
from repro.graph.contract import merge_sorted_coarse_edges, propagate_coords
from repro.graph.csr import CSRGraph, INDEX_DTYPE, WEIGHT_DTYPE
from repro.graph.partition import exact_weight_bincount
from repro.utils.errors import ConfigurationError
from repro.utils.rng import as_generator

UNMATCHED = -1

_INT_SENTINEL = np.int64(np.iinfo(np.int64).min)


def segment_max(values, xadj, sentinel):
    """Per-vertex maximum of ``values`` over CSR slices ``xadj``.

    Returns an array of length ``len(xadj) - 1`` whose entry ``v`` is
    ``values[xadj[v]:xadj[v+1]].max()``, or ``sentinel`` when the slice is
    empty.  ``np.maximum.reduceat`` mishandles empty segments (it returns
    ``values[start]`` and raises on a trailing ``start == len(values)``),
    so the reduction runs over the non-empty segments only: their start
    offsets are strictly increasing and in bounds, and consecutive
    non-empty starts delimit exactly one CSR slice because the empty
    segments in between share the same offset.
    """
    n = len(xadj) - 1
    values = np.asarray(values)
    out = np.full(n, sentinel, dtype=values.dtype)
    if n == 0 or len(values) == 0:
        return out
    nonempty = xadj[:-1] < xadj[1:]
    starts = xadj[:-1][nonempty]
    if len(starts):
        out[nonempty] = np.maximum.reduceat(values, starts)
    return out


def _edge_keys(graph, scheme, cewgt):
    """Per-directed-edge primary key for ``scheme`` (``None`` for RM).

    Keys are symmetric — both copies of an undirected edge carry the same
    key — so "u's best edge is (u, v)" and "v's best edge is (v, u)" rank
    the same physical edge identically, which the round-progress argument
    relies on.
    """
    if scheme is MatchingScheme.RM:
        return None
    if scheme is MatchingScheme.HEM:
        return graph.adjwgt
    if scheme is MatchingScheme.LEM:
        return -graph.adjwgt
    if scheme is MatchingScheme.HCM:
        src = graph.edge_sources()
        dst = graph.adjncy
        if cewgt is None:
            cewgt = np.zeros(graph.nvtxs, dtype=np.int64)
        sizes = graph.vwgt[src] + graph.vwgt[dst]
        internal = cewgt[src] + cewgt[dst] + graph.adjwgt
        denom = sizes * (sizes - 1)
        return np.where(denom > 0, 2.0 * internal / np.maximum(denom, 1), 0.0)
    raise ConfigurationError(f"unknown matching scheme {scheme!r}")


def vectorized_matching(graph, scheme, rng=None, cewgt=None) -> np.ndarray:
    """Maximal matching of ``graph`` under ``scheme``, in involution form.

    Drop-in counterpart of :func:`repro.core.matching.compute_matching`
    with ``impl="vectorized"``; see the module docstring for the round
    algorithm and its termination/maximality argument.
    """
    scheme = MatchingScheme(scheme)
    rng = as_generator(rng)
    n = graph.nvtxs
    match = np.full(n, UNMATCHED, dtype=np.int64)
    if n == 0:
        return match
    xadj, adjncy = graph.xadj, graph.adjncy
    src = graph.edge_sources()
    key = _edge_keys(graph, scheme, cewgt)
    if key is not None and key.dtype.kind == "f":
        key_sentinel = -np.inf
    else:
        key_sentinel = _INT_SENTINEL
    arange = np.arange(n, dtype=np.int64)
    free = np.ones(n, dtype=bool)
    while True:
        live = free[src] & free[adjncy]
        if not live.any():
            break
        # Fresh priorities each round keep RM a *random* matching and
        # de-correlate tie-breaks across rounds for the keyed schemes.
        prio = rng.permutation(n)
        if key is None:
            cand = live
        else:
            masked = np.where(live, key, key_sentinel)
            best = segment_max(masked, xadj, key_sentinel)
            cand = live & (masked == best[src])
        tprio = np.where(cand, prio[adjncy], -1)
        bestp = segment_max(tprio, xadj, np.int64(-1))
        chosen = cand & (tprio == bestp[src])
        partner = np.full(n, UNMATCHED, dtype=np.int64)
        # Priorities are distinct per round, so each proposing vertex
        # selects exactly one neighbour and the scatter never collides.
        partner[src[chosen]] = adjncy[chosen]
        proposers = np.flatnonzero(partner >= 0)
        accepted = partner[partner[proposers]] == proposers
        matched = proposers[accepted]
        match[matched] = partner[matched]
        free[matched] = False
    match[match == UNMATCHED] = arange[match == UNMATCHED]
    return match


def contract_vectorized(graph, cmap, ncoarse) -> CSRGraph:
    """Contract ``graph`` by ``cmap`` with one fused-key argsort.

    Bit-identical to :func:`repro.graph.contract.contract` (see the
    module docstring): only the sort differs, and the merged runs it
    delimits are the same.
    """
    cmap = np.asarray(cmap, dtype=np.int64)
    src = graph.edge_sources()
    cu = cmap[src]
    cv = cmap[graph.adjncy]
    keep = cu != cv  # drop collapsed (intra-multinode) edges
    cu, cv = cu[keep], cv[keep]
    w = graph.adjwgt[keep]

    cvwgt = exact_weight_bincount(
        cmap, graph.vwgt, minlength=ncoarse, total=graph.total_vwgt()
    )

    if len(cu) == 0:
        xadj = np.zeros(ncoarse + 1, dtype=np.int64)
        coarse = CSRGraph(
            xadj,
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=WEIGHT_DTYPE),
            cvwgt,
            validate=False,
        )
        propagate_coords(graph, coarse, cmap, ncoarse, cvwgt)
        return coarse

    order = np.argsort(cu * np.int64(ncoarse) + cv)
    cu, cv, w = cu[order], cv[order], w[order]
    xadj, cadjncy, cadjwgt = merge_sorted_coarse_edges(cu, cv, w, ncoarse)
    coarse = CSRGraph(xadj, cadjncy, cadjwgt, cvwgt, validate=False)
    propagate_coords(graph, coarse, cmap, ncoarse, cvwgt)
    return coarse


__all__ = [
    "vectorized_matching",
    "contract_vectorized",
    "segment_max",
    "UNMATCHED",
]
