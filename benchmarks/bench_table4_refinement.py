"""Table 4: refinement-policy comparison (GR / KLR / BGR / BKLR / BKLGR).

Paper columns: 32-way edge-cut and RTime, with HEM + GGGP fixed.

Expected shape (§4.1): cuts within ~15 % of each other; boundary policies
(BGR/BKLR/BKLGR) much cheaper than their non-boundary counterparts; KLR
the most expensive; BKLGR within a few % of BKLR's cut at lower time.
"""

from repro.bench import bench_matrices, pivot, table4_rows
from repro.matrices.suite import TABLE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK31", "BRACK2", "4ELT", "ROTOR"]


def test_table4_refinement_policies(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, TABLE_MATRICES)
    rows = benchmark.pedantic(
        lambda: table4_rows(matrices, nparts=32, scale=DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "table4_refinement",
        rows,
        ["32EC", "RTime"],
        title=f"Table 4 analogue: refinement policies, 32-way, scale={DEFAULT_SCALE}",
    )

    cuts = pivot(rows, "32EC")
    rtimes = pivot(rows, "RTime")
    for matrix, by_policy in cuts.items():
        best = min(by_policy.values())
        # Paper: every policy within 15 % of the best per matrix (slack
        # widened for the scaled-down graphs).
        assert max(by_policy.values()) <= 1.5 * best, (matrix, by_policy)
    # Under the eager cost model: boundary greedy is the cheapest policy
    # in aggregate and full KLR is the most expensive (small slack for
    # timing noise on the scaled-down graphs).
    total = {
        p: sum(rtimes[m][p] for m in rtimes)
        for p in ("GR", "KLR", "BGR", "BKLR", "BKLGR")
    }
    assert total["BGR"] <= total["GR"] * 1.05
    assert total["BGR"] <= total["KLR"]
    assert total["BKLR"] <= total["KLR"] * 1.25
    assert total["BKLGR"] <= total["KLR"]
