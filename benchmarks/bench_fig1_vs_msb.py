"""Figure 1: our multilevel algorithm vs multilevel spectral bisection.

Per matrix, plots (here: tabulates) the ratio of our edge-cut to MSB's for
three part counts.  Paper part counts (64, 128, 256) are scaled to
(16, 32, 64) to match the scaled-down graph orders.

Expected shape: ratio < 1 for almost every matrix ("for almost all the
problems, our algorithm produces partitions that have smaller edge-cuts
than those produced by MSB"), with MSB competitive only on a few and never
winning by more than ~1 %.
"""

from repro.bench import bench_matrices, cut_ratio_rows
from repro.matrices.suite import FIGURE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK30", "BRACK2", "4ELT", "MEMPLUS"]
NPARTS = (16, 32, 64)


def test_fig1_vs_msb(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, FIGURE_MATRICES)
    rows = benchmark.pedantic(
        lambda: cut_ratio_rows(matrices, "msb", nparts_list=NPARTS, scale=DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "fig1_vs_msb",
        rows,
        [f"ratio_{k}" for k in NPARTS],
        title=f"Figure 1 analogue: ML/MSB edge-cut ratio, k={NPARTS}, "
            f"scale={DEFAULT_SCALE} (bars < 1.0 = ML wins)",
    )
    # ML must win (ratio ≤ ~1) on the clear majority of (matrix, k) cells.
    cells = [
        rows_v
        for row in rows
        for rows_v in (row.values[f"ratio_{k}"] for k in NPARTS)
    ]
    wins = sum(1 for r in cells if r <= 1.02)
    assert wins >= 0.6 * len(cells), cells
