"""Figure 4: baseline runtimes relative to the multilevel algorithm.

The paper plots the time Chaco-ML, MSB and MSB-KL need for a 256-way
partition relative to ours (10–35× for MSB, 2–6× for Chaco-ML).  We run
the scaled analogue (64-way).

Expected shape here: every baseline slower than ours (ratio > 1), MSB-KL
slower than MSB.  The *magnitude* of the spectral gap is platform-bound:
our Lanczos runs in NumPy's C kernels while our KL runs in interpreted
Python, so the ratio is compressed relative to the paper's all-C setting
(documented in EXPERIMENTS.md).
"""

import os

from repro.bench import bench_matrices, runtime_rows
from repro.matrices.suite import FIGURE_MATRICES

from conftest import record_result

DEFAULT_SUBSET = ["BCSSTK30", "BRACK2", "4ELT", "MEMPLUS"]

# Relative *runtimes* depend on problem size (Python per-level overhead
# amortises with n), so this figure defaults to full-scale graphs even when
# the rest of the suite runs reduced.
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def test_fig4_relative_runtimes(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, FIGURE_MATRICES)
    rows = benchmark.pedantic(
        lambda: runtime_rows(matrices, nparts=64, scale=DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "fig4_runtime",
        rows,
        ["ml_seconds", "chaco_ml_rel", "msb_rel", "msb_kl_rel"],
        title=f"Figure 4 analogue: 64-way runtime relative to ML, "
            f"scale={DEFAULT_SCALE} (bars > 1.0 = ML faster)",
    )
    # Aggregate claim: summed over the suite, every baseline costs at
    # least as much as the multilevel algorithm.  (Per-matrix the picture
    # can flip on small dense graphs where our Python FM pays more than
    # NumPy's C Lanczos — see EXPERIMENTS.md for the platform discussion.)
    total_ml = sum(r.values["ml_seconds"] for r in rows)
    for key in ("chaco_ml_rel", "msb_rel", "msb_kl_rel"):
        total_base = sum(r.values[key] * r.values["ml_seconds"] for r in rows)
        assert total_base >= 0.9 * total_ml, (key, total_base, total_ml)
    # MSB-KL must cost at least as much as MSB on average.
    avg_msb = sum(r.values["msb_rel"] for r in rows) / len(rows)
    avg_msbkl = sum(r.values["msb_kl_rel"] for r in rows) / len(rows)
    assert avg_msbkl >= avg_msb * 0.95
