"""Ablation (§4.1 text + [22]): initial-partitioning algorithms.

The paper relegates the SBP/GGP/GGGP comparison to the tech report but
states the conclusion: "GGGP consistently finds smaller edge-cuts than the
other schemes at slightly better run time … there is no advantage in
choosing spectral bisection for partitioning the coarse graph."  This
bench regenerates that comparison, plus a seed-count sweep for the
growth heuristics (paper choices: 10 for GGP, 5 for GGGP).
"""

import time

import numpy as np

from repro.bench import Row, bench_matrices, bench_seed
from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS, InitialScheme
from repro.matrices import suite
from repro.matrices.suite import TABLE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK31", "4ELT", "BRACK2"]


def test_ablation_initial_partitioner(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, TABLE_MATRICES)
    seed = bench_seed()

    def run():
        rows = []
        for name in matrices:
            graph = suite.load(name, scale=DEFAULT_SCALE, seed=0)
            for scheme in InitialScheme:
                options = DEFAULT_OPTIONS.with_(initial=scheme)
                t0 = time.perf_counter()
                result = partition(graph, 32, options, np.random.default_rng(seed))
                wall = time.perf_counter() - t0
                rows.append(
                    Row(name, scheme.name,
                        {"32EC": result.cut,
                         "ITime": result.timers.get("ITime", 0.0),
                         "wall": wall})
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_initial",
        rows,
        ["32EC", "ITime", "wall"],
        title=f"Ablation: initial partitioner (32-way, scale={DEFAULT_SCALE})",
    )
    # GGGP must be within a few % of the best scheme on every matrix.
    by_matrix = {}
    for r in rows:
        by_matrix.setdefault(r.matrix, {})[r.scheme] = r.values["32EC"]
    for name, cuts in by_matrix.items():
        assert cuts["GGGP"] <= 1.15 * min(cuts.values()), (name, cuts)


def test_ablation_growth_trials(benchmark):
    seed = bench_seed()
    graph = suite.load("4ELT", scale=DEFAULT_SCALE, seed=0)

    def run():
        rows = []
        for trials in (1, 2, 5, 10, 20):
            options = DEFAULT_OPTIONS.with_(gggp_trials=trials)
            t0 = time.perf_counter()
            result = partition(graph, 32, options, np.random.default_rng(seed))
            rows.append(
                Row("4ELT", f"gggp_trials={trials}",
                    {"32EC": result.cut, "wall": time.perf_counter() - t0})
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_gggp_trials",
        rows,
        ["32EC", "wall"],
        title="Ablation: GGGP seed-count sweep (paper uses 5)",
    )
    assert all(r.values["32EC"] > 0 for r in rows)
