"""§5 claim: the parallel multilevel formulation scales to large p.

"Our parallel implementation [23] of this multilevel partitioning is able
to get a speedup of as much as 56 on a 128-processor Cray T3D for moderate
size problems."  This bench measures real per-level statistics (including
simulated handshake-matching rounds) and prices the parallel formulation
on a T3D-class α–β model, asserting the claim's shape: same-order speedup
at p = 128 for paper-size problems, and a severe wall-clock penalty if
refinement were not boundary-based.
"""

from repro.bench import Row, bench_matrices
from repro.matrices import suite
from repro.parallel import collect_level_stats, estimate_parallel_speedup
from repro.parallel.model import scale_levels
from repro.parallel.stats import LevelStats

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BRACK2", "ROTOR"]
PROCS = (8, 32, 128)


def test_parallel_speedup_model(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, ["BRACK2", "ROTOR", "WAVE", "4ELT"])

    def run():
        rows = []
        for name in matrices:
            graph = suite.load(name, scale=DEFAULT_SCALE, seed=0)
            levels, _ = collect_level_stats(graph)
            factor = suite.SUITE[name].paper_order / graph.nvtxs
            paper_levels = scale_levels(levels, factor)
            non_boundary = [
                LevelStats(lv.nvtxs, lv.nedges, boundary=lv.nvtxs,
                           rounds=lv.rounds)
                for lv in paper_levels
            ]
            values = {}
            for p in PROCS:
                est = estimate_parallel_speedup(paper_levels, p)
                values[f"speedup_{p}"] = est.speedup
                t_nb = estimate_parallel_speedup(non_boundary, p).parallel_time
                values[f"kl_penalty_{p}"] = t_nb / est.parallel_time
            rows.append(Row(name, "parallel-model", values))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "parallel_model",
        rows,
        [f"speedup_{p}" for p in PROCS] + [f"kl_penalty_{p}" for p in PROCS],
        title="§5 analogue: modelled parallel speedup at paper-size graphs "
            "(T3D-class machine; kl_penalty = wall-clock multiplier of "
            "non-boundary refinement)",
    )
    for r in rows:
        # Same order as the paper's 56× at p=128; and boundary refinement
        # must be the cheaper formulation at every p.
        assert 10 <= r.values["speedup_128"] <= 128, r
        assert r.values["speedup_128"] > r.values["speedup_8"]
        for p in PROCS:
            assert r.values[f"kl_penalty_{p}"] > 1.0
