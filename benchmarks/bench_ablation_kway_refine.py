"""Ablation: direct k-way refinement on top of recursive bisection.

The paper closes by noting the multilevel framework extends naturally;
the authors' follow-up moved refinement to the k-way partition itself.
This bench measures what that buys over plain recursive bisection on the
table suite: cut improvement and the (small) extra time.
"""

import time

import numpy as np

from repro.bench import Row, bench_matrices, bench_seed
from repro.core import partition, refine_kway
from repro.core.options import DEFAULT_OPTIONS
from repro.graph import communication_volume
from repro.matrices import suite
from repro.matrices.suite import TABLE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK31", "BRACK2", "4ELT", "ROTOR"]


def test_ablation_kway_refinement(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, TABLE_MATRICES)
    seed = bench_seed()

    def run():
        rows = []
        for name in matrices:
            graph = suite.load(name, scale=DEFAULT_SCALE, seed=0)
            t0 = time.perf_counter()
            p = partition(graph, 32, DEFAULT_OPTIONS, np.random.default_rng(seed))
            t_rb = time.perf_counter() - t0
            rb_cut = p.cut
            rb_vol = communication_volume(graph, p.where)
            t0 = time.perf_counter()
            refine_kway(graph, p, DEFAULT_OPTIONS, np.random.default_rng(seed))
            t_ref = time.perf_counter() - t0
            rows.append(
                Row(name, "rb->kway",
                    {"rb_cut": rb_cut,
                     "kway_cut": p.cut,
                     "gain_%": 100.0 * (rb_cut - p.cut) / rb_cut,
                     "rb_commvol": rb_vol,
                     "kway_commvol": communication_volume(graph, p.where),
                     "rb_time": t_rb,
                     "refine_time": t_ref})
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_kway_refine",
        rows,
        ["rb_cut", "kway_cut", "gain_%", "rb_commvol", "kway_commvol",
            "rb_time", "refine_time"],
        title=f"Ablation: direct k-way refinement after recursive bisection "
            f"(32-way, scale={DEFAULT_SCALE})",
    )
    for r in rows:
        # k-way refinement must never worsen the cut and must stay cheap
        # relative to partitioning (dense graphs have near-global
        # boundaries at small scale, hence the slack).
        assert r.values["kway_cut"] <= r.values["rb_cut"]
        assert r.values["refine_time"] <= 1.2 * r.values["rb_time"]
