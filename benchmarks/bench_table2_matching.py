"""Table 2: matching-scheme comparison (RM / HEM / LEM / HCM).

Paper columns: 32-way edge-cut, CTime (coarsening) and UTime
(uncoarsening = ITime + RTime + PTime), with GGGP initial partitioning and
BKLGR refinement fixed.

Expected shape (§4.1): all schemes within ~10 % on edge-cut; RM cheapest
to coarsen, LEM/HCM costliest; LEM's *uncoarsening* far costlier than
HEM's because its projected partitions are poor (see Table 3).
"""

import pytest

from repro.bench import bench_matrices, pivot, table2_rows
from repro.matrices.suite import TABLE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK31", "BRACK2", "4ELT", "ROTOR"]


def test_table2_matching_schemes(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, TABLE_MATRICES)

    rows = benchmark.pedantic(
        lambda: table2_rows(matrices, nparts=32, scale=DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "table2_matching",
        rows,
        ["32EC", "CTime", "UTime", "balance"],
        title=f"Table 2 analogue: matching schemes, 32-way, scale={DEFAULT_SCALE}",
    )

    cuts = pivot(rows, "32EC")
    ctimes = pivot(rows, "CTime")
    for matrix, by_scheme in cuts.items():
        # Paper: "The value of 32EC for all schemes are within 10% of each
        # other."  Allow slack for the small scaled-down graphs.
        best = min(by_scheme.values())
        assert max(by_scheme.values()) <= 2.0 * best, (matrix, by_scheme)
    # RM coarsens fastest on average (it does no weight comparisons).
    avg = {
        scheme: sum(ctimes[m][scheme] for m in cuts) / len(cuts)
        for scheme in ("RM", "HEM", "LEM", "HCM")
    }
    assert avg["RM"] <= avg["HCM"] * 1.25
