"""Ablation: gain-table engineering (implementation §3.3 footnote).

The paper stores gains in "a hash table that allows insertions, updates,
and extraction of the vertex with maximum gain in constant time"; classic
FM uses a bucket array; we default to a lazy binary heap.  This bench
compares the two structures we implement, in both gain-maintenance modes,
verifying the engineering claim that the choice affects time but not
quality.
"""

import time

import numpy as np

from repro.bench import Row, bench_matrices, bench_seed
from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS
from repro.matrices import suite
from repro.matrices.suite import TABLE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK31", "4ELT"]


def test_ablation_gain_table(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, TABLE_MATRICES)
    seed = bench_seed()

    def run():
        rows = []
        for name in matrices:
            graph = suite.load(name, scale=DEFAULT_SCALE, seed=0)
            for kind in ("heap", "bucket"):
                for eager in (False, True):
                    options = DEFAULT_OPTIONS.with_(
                        gain_table=kind, eager_gains=eager
                    )
                    t0 = time.perf_counter()
                    result = partition(
                        graph, 32, options, np.random.default_rng(seed)
                    )
                    label = f"{kind}/{'eager' if eager else 'lazy'}"
                    rows.append(
                        Row(name, label,
                            {"32EC": result.cut,
                             "RTime": result.timers.get("RTime", 0.0),
                             "wall": time.perf_counter() - t0})
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_gain_table",
        rows,
        ["32EC", "RTime", "wall"],
        title=f"Ablation: gain-table structure × gain maintenance "
            f"(32-way, scale={DEFAULT_SCALE})",
    )
    # Quality must be structure-independent (within noise).
    by_matrix = {}
    for r in rows:
        by_matrix.setdefault(r.matrix, []).append(r.values["32EC"])
    for name, cuts in by_matrix.items():
        assert max(cuts) <= 1.25 * min(cuts), (name, cuts)
