"""Figure 2: our multilevel algorithm vs MSB followed by KL refinement.

Expected shape: KL refinement improves MSB (Figure 2's ratios sit closer
to 1.0 than Figure 1's), but our scheme still wins on most matrices while
MSB-KL costs even more time than MSB (see Figure 4).
"""

from repro.bench import bench_matrices, cut_ratio_rows
from repro.matrices.suite import FIGURE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK30", "BRACK2", "4ELT", "MEMPLUS"]
NPARTS = (16, 32, 64)


def test_fig2_vs_msb_kl(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, FIGURE_MATRICES)
    rows = benchmark.pedantic(
        lambda: cut_ratio_rows(
            matrices, "msb-kl", nparts_list=NPARTS, scale=DEFAULT_SCALE
        ),
        rounds=1,
        iterations=1,
    )
    record_result(
        "fig2_vs_msbkl",
        rows,
        [f"ratio_{k}" for k in NPARTS],
        title=f"Figure 2 analogue: ML/MSB-KL edge-cut ratio, k={NPARTS}, "
            f"scale={DEFAULT_SCALE} (bars < 1.0 = ML wins)",
    )
    cells = [row.values[f"ratio_{k}"] for row in rows for k in NPARTS]
    # MSB-KL is a strong baseline: require ML within 10 % on most cells
    # rather than strict wins.
    close_or_better = sum(1 for r in cells if r <= 1.10)
    assert close_or_better >= 0.6 * len(cells), cells
