"""Table 3: matching schemes with refinement disabled.

The paper's point: the quality of the *coarsening* shows up when no
refinement is allowed to hide it.  HEM/HCM project far better partitions
than RM and especially LEM — "the edge-cut of LEM on the coarser graphs is
significantly higher than that for either HEM or HCM" — even though after
refinement (Table 2) the final cuts converge.
"""

from repro.bench import bench_matrices, pivot, table3_rows
from repro.matrices.suite import TABLE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK31", "BRACK2", "4ELT", "ROTOR"]


def test_table3_no_refinement(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, TABLE_MATRICES)
    rows = benchmark.pedantic(
        lambda: table3_rows(matrices, nparts=32, scale=DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "table3_norefine",
        rows,
        ["32EC"],
        title=f"Table 3 analogue: no refinement, 32-way, scale={DEFAULT_SCALE}",
    )

    cuts = pivot(rows, "32EC")
    # LEM must be the worst (or tied worst) coarsener on most matrices,
    # and HEM must beat LEM on average by a clear margin.
    hem_total = sum(cuts[m]["HEM"] for m in cuts)
    lem_total = sum(cuts[m]["LEM"] for m in cuts)
    assert lem_total > 1.2 * hem_total, (hem_total, lem_total)
