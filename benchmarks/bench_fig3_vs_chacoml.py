"""Figure 3: our multilevel algorithm vs the Chaco-ML combination.

Chaco-ML = RM coarsening + spectral coarse partition + KLR every other
level.  Expected shape: "our multilevel algorithm usually produces
partitions with smaller edge-cut than that of Chaco-ML … for the cases
where Chaco-ML does better, it is only marginally better."
"""

from repro.bench import bench_matrices, cut_ratio_rows
from repro.matrices.suite import FIGURE_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["BCSSTK30", "BRACK2", "4ELT", "MEMPLUS"]
NPARTS = (16, 32, 64)


def test_fig3_vs_chaco_ml(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, FIGURE_MATRICES)
    rows = benchmark.pedantic(
        lambda: cut_ratio_rows(
            matrices, "chaco-ml", nparts_list=NPARTS, scale=DEFAULT_SCALE
        ),
        rounds=1,
        iterations=1,
    )
    record_result(
        "fig3_vs_chacoml",
        rows,
        [f"ratio_{k}" for k in NPARTS],
        title=f"Figure 3 analogue: ML/Chaco-ML edge-cut ratio, k={NPARTS}, "
            f"scale={DEFAULT_SCALE} (bars < 1.0 = ML wins)",
    )
    cells = [row.values[f"ratio_{k}"] for row in rows for k in NPARTS]
    close_or_better = sum(1 for r in cells if r <= 1.05)
    assert close_or_better >= 0.6 * len(cells), cells
