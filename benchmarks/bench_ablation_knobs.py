"""Ablations of the multilevel knobs the paper fixes by fiat.

Three sweeps on one representative mesh:

* **KL early-exit x** — the paper: "The choice of x = 50 works quite well
  for all our graphs";
* **coarsest-graph size** — the paper coarsens to ~100 vertices;
* **BKLGR boundary switch** — the paper switches BKLR→BGR at a boundary of
  2 % of |V₀|.

Each sweep reports cut and wall time so the trade-off each default buys is
visible.
"""

import time

import numpy as np

from repro.bench import Row, bench_seed
from repro.core import partition
from repro.core.options import DEFAULT_OPTIONS
from repro.matrices import suite

from conftest import DEFAULT_SCALE, record_result


def _sweep(graph, configs, seed):
    rows = []
    for label, options in configs:
        t0 = time.perf_counter()
        result = partition(graph, 32, options, np.random.default_rng(seed))
        rows.append(
            Row("BRACK2", label,
                {"32EC": result.cut, "wall": time.perf_counter() - t0})
        )
    return rows


def test_ablation_kl_early_exit(benchmark):
    graph = suite.load("BRACK2", scale=DEFAULT_SCALE, seed=0)
    seed = bench_seed()
    configs = [
        (f"x={x}", DEFAULT_OPTIONS.with_(kl_early_exit=x))
        for x in (5, 20, 50, 150, 400)
    ]
    rows = benchmark.pedantic(lambda: _sweep(graph, configs, seed),
                              rounds=1, iterations=1)
    record_result(
        "ablation_kl_early_exit",
        rows,
        ["32EC", "wall"],
        title="Ablation: KL early-exit x (paper: 50)",
    )
    assert all(r.values["32EC"] > 0 for r in rows)


def test_ablation_coarsen_to(benchmark):
    graph = suite.load("BRACK2", scale=DEFAULT_SCALE, seed=0)
    seed = bench_seed()
    configs = [
        (f"coarsen_to={c}", DEFAULT_OPTIONS.with_(coarsen_to=c))
        for c in (25, 50, 100, 400, 1600)
    ]
    rows = benchmark.pedantic(lambda: _sweep(graph, configs, seed),
                              rounds=1, iterations=1)
    record_result(
        "ablation_coarsen_to",
        rows,
        ["32EC", "wall"],
        title="Ablation: coarsest-graph size (paper: ~100)",
    )
    assert all(r.values["32EC"] > 0 for r in rows)


def test_ablation_bklgr_switch(benchmark):
    graph = suite.load("BRACK2", scale=DEFAULT_SCALE, seed=0)
    seed = bench_seed()
    configs = [
        (f"switch={f}", DEFAULT_OPTIONS.with_(bklgr_boundary_fraction=f))
        for f in (0.0, 0.01, 0.02, 0.10, 1.0)
    ]
    rows = benchmark.pedantic(lambda: _sweep(graph, configs, seed),
                              rounds=1, iterations=1)
    record_result(
        "ablation_bklgr_switch",
        rows,
        ["32EC", "wall"],
        title="Ablation: BKLGR boundary switch (paper: 0.02; 0.0=BGR, 1.0=BKLR)",
    )
    assert all(r.values["32EC"] > 0 for r in rows)
