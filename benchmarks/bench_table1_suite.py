"""Table 1: the workload suite inventory.

Regenerates the paper's matrix table for our synthetic analogues: name,
order, edge count (≈ nonzeros/2) and description, and benchmarks suite
generation itself (the substrate cost every other experiment pays).
"""

from repro.bench import Row, bench_matrices
from repro.matrices import suite

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["LSHP3466", "4ELT", "BCSPWR10", "BCSSTK31", "MEMPLUS", "FINAN512"]


def test_table1_inventory(benchmark):
    names = bench_matrices(DEFAULT_SUBSET, suite.suite_names())

    def generate_all():
        return [
            suite.load(name, scale=DEFAULT_SCALE, seed=0, cache=False)
            for name in names
        ]

    graphs = benchmark.pedantic(generate_all, rounds=1, iterations=1)

    rows = []
    for name, graph in zip(names, graphs):
        entry = suite.SUITE[name]
        rows.append(
            Row(
                matrix=name,
                scheme=entry.short,
                values={
                    "order": graph.nvtxs,
                    "edges": graph.nedges,
                    "avg_deg": graph.average_degree(),
                    "paper_order": entry.paper_order,
                    "description": entry.description,
                },
            )
        )
        assert graph.nvtxs > 0
    record_result(
        "table1_suite",
        rows,
        ["order", "edges", "avg_deg", "paper_order", "description"],
        title=f"Table 1 analogue (scale={DEFAULT_SCALE})",
    )
