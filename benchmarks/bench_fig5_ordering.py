"""Figure 5: fill-reducing ordering quality — MLND vs MMD vs SND.

Per matrix (displayed in increasing order, as in the paper), the ratio of
MMD's and SND's factorization opcounts to MLND's; bars above 1.0 mean
MLND produces the better ordering.

Expected shape (§4.3): MLND beats MMD on the large 3-D FE/stiffness
problems (up to 2–3×) while MMD can win on small/2-D/irregular ones
(BCSPWR10 is everyone's worst case); MLND beats SND nearly everywhere;
MLND's orderings expose more elimination-tree parallelism than MMD's.
"""

from repro.bench import bench_matrices, ordering_rows
from repro.matrices.suite import ORDERING_MATRICES

from conftest import DEFAULT_SCALE, record_result

DEFAULT_SUBSET = ["LSHP3466", "BCSPWR10", "4ELT", "BCSSTK29", "BRACK2", "ROTOR"]


def test_fig5_ordering_quality(benchmark):
    matrices = bench_matrices(DEFAULT_SUBSET, ORDERING_MATRICES)
    rows = benchmark.pedantic(
        lambda: ordering_rows(matrices, scale=DEFAULT_SCALE),
        rounds=1,
        iterations=1,
    )
    record_result(
        "fig5_ordering",
        rows,
        [
                "mmd_over_mlnd",
                "snd_over_mlnd",
                "mlnd_parallelism",
                "mmd_parallelism",
                "mlnd_seconds",
                "mmd_seconds",
            ],
        title=f"Figure 5 analogue: opcount ratios vs MLND, scale={DEFAULT_SCALE} "
            f"(bars > 1.0 = MLND better)",
    )
    # MLND must beat MMD on the 3-D matrices of the subset...
    threed = [r for r in rows if r.matrix in ("BRACK2", "ROTOR", "BCSSTK29",
                                              "WAVE", "CANT", "TROLL", "SHELL93")]
    if threed:
        avg_3d = sum(r.values["mmd_over_mlnd"] for r in threed) / len(threed)
        assert avg_3d > 1.0, [(r.matrix, r.values["mmd_over_mlnd"]) for r in threed]
    # ...and expose more elimination-tree parallelism than MMD overall.
    more_parallel = sum(
        1 for r in rows
        if r.values["mlnd_parallelism"] >= r.values["mmd_parallelism"]
    )
    assert more_parallel >= 0.6 * len(rows)
    # SND never collapses MLND's advantage by more than ~30 % on average
    # (paper: SND needs 30 % more operations than MLND in total).
    avg_snd = sum(r.values["snd_over_mlnd"] for r in rows) / len(rows)
    assert avg_snd > 0.9
