"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures.  A plain
``pytest benchmarks/ --benchmark-only`` runs a representative subset at a
reduced scale so the whole suite finishes in minutes on one core; the full
paper sets are selected with environment variables::

    REPRO_BENCH_MATRICES=all REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only

Every experiment prints its paper-table/figure analogue to stdout (run
pytest with ``-s`` to see them live; they are also echoed into the
terminalreporter at the end).  Experiments that report via
:func:`record_result` additionally persist their rows as machine-readable
``BENCH_<table>.json`` files in the repository root (schema:
``repro-bench/1``, see :mod:`repro.obs.export` and docs/OBSERVABILITY.md)
— the text tables are for humans, the JSON is what tooling and the
``repro bench-diff`` regression gate consume.  Each table is written the
moment it is recorded *and* rewritten at session end: an interrupted run
(Ctrl-C mid-suite, a later benchmark crashing) still leaves every
completed table on disk.
"""

import os

import pytest

#: Repository root — resolved from this file so the write-on-record path
#: is stable regardless of pytest's rootpath detection or the cwd.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Reduced default scale so a full benchmark pass stays laptop-friendly;
#: override with REPRO_BENCH_SCALE.
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

_REPORTS: list[str] = []
_RESULTS: list[tuple] = []


def record_report(text: str) -> None:
    """Queue a formatted table for the end-of-run summary (text only)."""
    _REPORTS.append(text)


def record_result(table: str, rows, columns, *, title: str = "",
                  extra=None) -> None:
    """Record one experiment's result: printed table + JSON persistence.

    ``table`` names the artefact (``BENCH_<table>.json``); ``rows`` is a
    list of :class:`repro.bench.Row` (or plain dicts) and ``columns`` the
    value keys the text rendering shows.
    """
    from repro.bench import format_table

    record_report(format_table(rows, list(columns), title=title))
    _RESULTS.append((table, list(rows), list(columns), title, extra))
    # Persist immediately so an interrupted session keeps every table
    # completed so far; sessionfinish rewrites the same files (idempotent).
    _write_result(_REPO_ROOT, table, rows, columns, title, extra)


def _write_result(root, table, rows, columns, title, extra) -> None:
    from repro.obs import bench_payload, write_bench_json

    payload = bench_payload(
        table, rows, title=title, columns=list(columns), extra=extra
    )
    write_bench_json(os.path.join(root, f"BENCH_{table}.json"), payload)


def pytest_sessionfinish(session):
    if not _RESULTS:
        return
    root = str(session.config.rootpath)
    for table, rows, columns, title, extra in _RESULTS:
        _write_result(root, table, rows, columns, title, extra)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper table/figure reproductions")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
