"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures.  A plain
``pytest benchmarks/ --benchmark-only`` runs a representative subset at a
reduced scale so the whole suite finishes in minutes on one core; the full
paper sets are selected with environment variables::

    REPRO_BENCH_MATRICES=all REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only

Every experiment prints its paper-table/figure analogue to stdout (run
pytest with ``-s`` to see them live; they are also echoed into the
terminalreporter at the end).
"""

import os

import pytest

#: Reduced default scale so a full benchmark pass stays laptop-friendly;
#: override with REPRO_BENCH_SCALE.
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

_REPORTS: list[str] = []


def record_report(text: str) -> None:
    """Queue a formatted table for the end-of-run summary."""
    _REPORTS.append(text)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper table/figure reproductions")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
