"""Legacy setup shim.

Modern metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on minimal environments that lack the ``wheel``
package (pip falls back to ``setup.py develop`` when a ``setup.py`` is
present and PEP 660 wheel building is unavailable).
"""

from setuptools import setup

setup()
